"""Tests for the calibration sensitivity analysis."""

import pytest

from repro.analysis.sensitivity import (
    BOUNDARY_CLAIMS,
    check_boundary_pattern,
    sweep_block_bytes,
    sweep_interconnect_overhead,
    sweep_queue_depth,
    sweep_reference_frames,
)

BUDGET = 40_000


class TestBoundaryPattern:
    def test_default_calibration_satisfies_every_claim(self):
        outcome = check_boundary_pattern(chunk_budget=BUDGET)
        assert all(outcome.values()), [k for k, v in outcome.items() if not v]

    def test_all_claims_evaluated(self):
        outcome = check_boundary_pattern(chunk_budget=BUDGET)
        assert set(outcome) == {c[0] for c in BOUNDARY_CLAIMS}

    def test_extra_reference_frames_break_the_2160p_cell(self):
        # More references -> more encoder traffic -> the paper's
        # "doubtful" 2160p@8ch cell tips over first.
        outcome = check_boundary_pattern(reference_frames=6, chunk_budget=BUDGET)
        assert not outcome["2160p30@8ch"]
        # The robust cells survive even then.
        assert outcome["720p30@1ch"]
        assert outcome["720p60@2ch"]


class TestSweeps:
    def test_interconnect_robust_around_default(self):
        result = sweep_interconnect_overhead(
            values=(0.40, 0.45, 0.50), chunk_budget=BUDGET
        )
        for value in (0.40, 0.45, 0.50):
            assert result.holds_at(value)

    def test_default_marked(self):
        result = sweep_interconnect_overhead(values=(0.45,), chunk_budget=BUDGET)
        assert result.default_value == pytest.approx(0.45)
        assert "(default)" in result.format()

    def test_block_size_default_robust(self):
        result = sweep_block_bytes(values=(4096, 8192), chunk_budget=BUDGET)
        assert result.holds_at(4096.0)

    def test_queue_depth_default_robust(self):
        result = sweep_queue_depth(values=(4, 8), chunk_budget=BUDGET)
        assert result.holds_at(8.0)

    def test_failed_claims_reported(self):
        # An absurd interconnect cost breaks feasibility claims and
        # the failure list says which.
        result = sweep_interconnect_overhead(values=(2.0,), chunk_budget=BUDGET)
        assert not result.holds_at(2.0)
        failed = result.failed_claims_at(2.0)
        assert failed
        assert all(claim in {c[0] for c in BOUNDARY_CLAIMS} for claim in failed)

    def test_robust_values_subset(self):
        result = sweep_reference_frames(values=(3, 4), chunk_budget=BUDGET)
        assert set(result.robust_values()) <= {3.0, 4.0}
        assert 4.0 in result.robust_values()
