"""Tests for the design-space explorer."""

import pytest

from repro.analysis.explorer import (
    compare_energy_strategies,
    conclusions_summary,
    find_minimum_power_configuration,
    minimum_channels,
)
from repro.core.config import SystemConfig
from repro.errors import ConfigurationError
from repro.usecase.levels import level_by_name

BUDGET = 50_000


def _cycle_exact_default():
    from repro.backends.registry import default_backend_name

    return default_backend_name() in ("reference", "fast")


class TestMinimumChannels:
    def test_720p30_needs_one_channel(self):
        assert minimum_channels(level_by_name("3.1"), chunk_budget=BUDGET) == 1

    def test_720p60_needs_two_channels(self):
        # The paper: "Level 3.2 (@60 fps) requires at least two channels."
        assert minimum_channels(level_by_name("3.2"), chunk_budget=BUDGET) == 2

    @pytest.mark.skipif(
        not _cycle_exact_default(),
        reason="the marginal-vs-safe boundary needs cycle-exact timing",
    )
    def test_1080p30_marginal_vs_safe(self):
        # Feasible on 2 (marginally), safe on 4 -- the paper's "on the
        # safe side" distinction.
        level = level_by_name("4")
        assert minimum_channels(level, chunk_budget=BUDGET) == 2
        assert minimum_channels(level, require_margin=True, chunk_budget=BUDGET) == 4

    def test_2160p30_needs_eight(self):
        assert minimum_channels(level_by_name("5.2"), chunk_budget=BUDGET) == 8

    def test_returns_none_when_impossible(self):
        # 2160p30 on at most 2 channels: hopeless.
        assert minimum_channels(
            level_by_name("5.2"), channel_counts=(1, 2), chunk_budget=BUDGET
        ) is None

    def test_lower_clock_needs_more_channels(self):
        level = level_by_name("3.1")
        at_200 = minimum_channels(level, freq_mhz=200.0, chunk_budget=BUDGET)
        at_533 = minimum_channels(level, freq_mhz=533.0, chunk_budget=BUDGET)
        assert at_200 >= at_533


class TestConclusionsSummary:
    def test_matches_paper_section_v(self):
        # "level 3.2 ... clearly needs several channels ... level 4
        # requires the 4-channel configuration [2 is only marginal]
        # ... 8-channel ... capable up to level 5.2."
        summary = conclusions_summary(chunk_budget=BUDGET)
        assert summary["3.1"] == 1
        assert summary["3.2"] == 2
        assert summary["4"] in (2, 4)
        assert summary["4.2"] in (4, 8)
        assert summary["5.2"] == 8


class TestMinimumPowerConfiguration:
    def test_finds_a_passing_point(self):
        best = find_minimum_power_configuration(
            level_by_name("3.1"),
            frequencies_mhz=(400.0,),
            chunk_budget=BUDGET,
        )
        assert best is not None
        assert best.verdict.name == "PASS"

    def test_cheapest_720p30_is_single_channel(self):
        # Extra channels only add idle power for a load one channel
        # already sustains.
        best = find_minimum_power_configuration(
            level_by_name("3.1"),
            frequencies_mhz=(400.0,),
            chunk_budget=BUDGET,
        )
        assert best.config.channels == 1

    def test_impossible_grid_returns_none(self):
        best = find_minimum_power_configuration(
            level_by_name("5.2"),
            channel_counts=(1,),
            frequencies_mhz=(200.0,),
            chunk_budget=BUDGET,
        )
        assert best is None


class TestEnergyStrategies:
    def test_strategies_are_energy_comparable(self):
        # The headline: immediate power-down makes race-to-idle and
        # just-in-time nearly equivalent in energy.
        cmp = compare_energy_strategies(
            level_by_name("3.1"),
            SystemConfig(channels=2, freq_mhz=400.0),
            chunk_budget=BUDGET,
        )
        assert cmp.energy_ratio == pytest.approx(1.0, abs=0.15)

    def test_just_in_time_stretches_access_time(self):
        cmp = compare_energy_strategies(
            level_by_name("3.1"),
            SystemConfig(channels=2, freq_mhz=400.0),
            chunk_budget=BUDGET,
        )
        assert cmp.just_in_time_access_ms > cmp.race_to_idle_access_ms

    def test_infeasible_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            compare_energy_strategies(
                level_by_name("5.2"),
                SystemConfig(channels=1, freq_mhz=400.0),
                chunk_budget=BUDGET,
            )

    def test_summary_mentions_strategies(self):
        cmp = compare_energy_strategies(
            level_by_name("3.1"),
            SystemConfig(channels=2, freq_mhz=400.0),
            chunk_budget=BUDGET,
        )
        text = cmp.summary()
        assert "race-to-idle" in text
        assert "just-in-time" in text


class TestPrescreen:
    """Two-phase exploration delegates to the oracle screening policy."""

    @pytest.mark.parametrize("slack", [-0.25, float("nan"), float("inf")])
    def test_bad_slack_refused(self, slack):
        with pytest.raises(ConfigurationError, match="slack"):
            find_minimum_power_configuration(
                level_by_name("3.1"),
                channel_counts=(1, 2),
                frequencies_mhz=(266.0, 400.0),
                chunk_budget=BUDGET,
                prescreen_backend="analytic",
                prescreen_slack=slack,
            )

    def test_prescreen_matches_exhaustive_answer(self):
        from repro.telemetry.session import Telemetry

        telemetry = Telemetry.enabled()
        level = level_by_name("3.1")
        grid = dict(
            channel_counts=(1, 2, 4),
            frequencies_mhz=(200.0, 333.0, 466.0),
            chunk_budget=BUDGET,
        )
        screened = find_minimum_power_configuration(
            level,
            prescreen_backend="analytic",
            telemetry=telemetry,
            **grid,
        )
        exhaustive = find_minimum_power_configuration(level, **grid)
        assert screened is not None
        assert screened.config == exhaustive.config
        assert screened.total_power_mw == exhaustive.total_power_mw
        registry = telemetry.registry
        assert registry.counter("explorer.prescreen_points").value == 9
        assert 0 < registry.counter("explorer.prescreen_survivors").value <= 9
        assert registry.counter("explorer.prescreen_empty").value == 0

    def test_empty_screen_falls_back_to_full_grid(self):
        from repro.telemetry.session import Telemetry

        telemetry = Telemetry.enabled()
        # One channel at the slowest clock cannot sustain 2160p30; the
        # screen eliminates everything and the explorer must fall back
        # to the unscreened grid (counting the event) rather than
        # wrongly conclude infeasibility from the cheap backend alone.
        result = find_minimum_power_configuration(
            level_by_name("5.2"),
            channel_counts=(1,),
            frequencies_mhz=(200.0,),
            chunk_budget=BUDGET,
            prescreen_backend="analytic",
            telemetry=telemetry,
        )
        assert result is None  # genuinely infeasible, decided by the real backend
        registry = telemetry.registry
        assert registry.counter("explorer.prescreen_empty").value == 1
        assert registry.counter("explorer.prescreen_survivors").value == 0
