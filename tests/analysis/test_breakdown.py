"""Tests for the per-stage cost breakdown."""

import pytest

from repro.analysis.breakdown import stage_breakdown
from repro.core.config import SystemConfig
from repro.usecase.levels import level_by_name

BUDGET = 50_000


@pytest.fixture(scope="module")
def breakdown():
    return stage_breakdown(
        level_by_name("3.1"),
        SystemConfig(channels=2, freq_mhz=400.0),
        chunk_budget=BUDGET,
    )


class TestStageBreakdown:
    def test_all_stages_present(self, breakdown):
        names = [s.stage for s in breakdown.stages]
        assert "Camera I/F" in names
        assert "Video encoder" in names
        assert "Memory card" in names

    def test_encoder_dominates(self, breakdown):
        # Section II: "the single most memory intensive part is the
        # video encoding" -- true in time and energy, not just bytes.
        dom = breakdown.dominant_stage()
        assert dom.stage == "Video encoder"
        assert dom.category == "coding"
        assert dom.energy_mj == max(s.energy_mj for s in breakdown.stages)

    def test_stage_times_sum_close_to_combined(self, breakdown):
        # Isolated attribution is slightly pessimistic (cold rows per
        # stage) but must stay within a few percent.
        assert breakdown.stage_sum_ms >= breakdown.combined_access_ms * 0.99
        assert breakdown.isolation_overhead < 0.10

    def test_bytes_match_table1_shares(self, breakdown):
        from repro.usecase.pipeline import VideoRecordingUseCase

        uc = VideoRecordingUseCase(level_by_name("3.1"))
        expected = {s.name: s.total_bits / 8 for s in uc.stages()}
        total_expected = sum(expected.values())
        total_measured = sum(s.bytes_moved for s in breakdown.stages)
        for cost in breakdown.stages:
            share_expected = expected[cost.stage] / total_expected
            share_measured = cost.bytes_moved / total_measured
            assert share_measured == pytest.approx(share_expected, abs=0.01)

    def test_positive_costs(self, breakdown):
        for s in breakdown.stages:
            assert s.access_time_ms > 0
            assert s.energy_mj > 0
            assert s.effective_bandwidth_gbps > 0

    def test_format_renders(self, breakdown):
        text = breakdown.format()
        assert "Video encoder" in text
        assert "combined frame" in text
