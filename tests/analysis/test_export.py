"""Tests for CSV export of experiment results."""

import csv

import pytest

from repro.analysis.experiments import (
    run_fig3,
    run_fig4,
    run_fig5,
    run_table1,
    run_xdr_comparison,
)
from repro.analysis.export import (
    export_fig3,
    export_fig4,
    export_fig5,
    export_table1,
    export_xdr,
)

BUDGET = 30_000


def read_csv(path):
    with open(path, newline="") as handle:
        return list(csv.reader(handle))


@pytest.fixture(scope="module")
def fig5():
    return run_fig5(chunk_budget=BUDGET)


class TestExports:
    def test_table1_csv(self, tmp_path):
        path = tmp_path / "table1.csv"
        count = export_table1(run_table1(), path)
        rows = read_csv(path)
        assert len(rows) == count + 1
        assert rows[0][0] == "Stage"
        assert any(r[0] == "Video encoder" for r in rows)

    def test_fig3_csv(self, tmp_path):
        path = tmp_path / "fig3.csv"
        result = run_fig3(
            frequencies_mhz=(200.0, 400.0),
            channel_counts=(1, 2),
            chunk_budget=BUDGET,
        )
        count = export_fig3(result, path)
        rows = read_csv(path)
        assert count == 4
        assert rows[0] == ["freq_mhz", "channels", "access_ms", "verdict"]
        assert float(rows[1][2]) > 0

    def test_fig4_csv(self, tmp_path, fig5):
        path = tmp_path / "fig4.csv"
        count = export_fig4(fig5.fig4, path)
        rows = read_csv(path)
        assert count == 20  # 5 levels x 4 channel counts
        assert rows[0][0] == "level"
        verdicts = {r[5] for r in rows[1:]}
        assert "FAIL" in verdicts and "PASS" in verdicts

    def test_fig5_csv_zero_bars(self, tmp_path, fig5):
        path = tmp_path / "fig5.csv"
        export_fig5(fig5, path)
        rows = read_csv(path)
        failing = [r for r in rows[1:] if r[5] == "FAIL"]
        assert failing
        # The reported bar is zero but the raw power is preserved.
        for row in failing:
            assert float(row[2]) == 0.0
            assert float(row[3]) > 0.0

    def test_xdr_csv(self, tmp_path, fig5):
        path = tmp_path / "xdr.csv"
        result = run_xdr_comparison(fig5=run_fig5(
            channel_counts=(8,), chunk_budget=BUDGET
        ))
        count = export_xdr(result, path)
        rows = read_csv(path)
        assert count == len(rows) - 1
        ratios = [float(r[2]) for r in rows[1:]]
        assert all(0.0 < x < 0.5 for x in ratios)
