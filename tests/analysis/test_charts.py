"""Tests for terminal chart rendering."""

import pytest

from repro.analysis.charts import (
    ZERO_MARK,
    fig3_chart,
    fig4_chart,
    fig5_chart,
    grouped_bars,
    hbar_chart,
)
from repro.analysis.experiments import run_fig3, run_fig5
from repro.errors import ConfigurationError

BUDGET = 25_000


class TestHbarChart:
    def test_bars_scale_with_values(self):
        out = hbar_chart([("a", 10.0), ("b", 20.0)], width=20)
        lines = out.split("\n")
        assert lines[1].count("#") > lines[0].count("#")

    def test_max_value_fills_width(self):
        out = hbar_chart([("a", 100.0)], width=20)
        assert out.count("#") == 19

    def test_zero_bar_annotated(self):
        out = hbar_chart([("a", 0.0), ("b", 5.0)], width=20)
        assert ZERO_MARK in out

    def test_reference_line_drawn(self):
        out = hbar_chart(
            [("a", 10.0)], width=30, reference=("limit", 20.0), unit=" ms"
        )
        assert "|" in out
        assert "^ limit = 20 ms" in out

    def test_labels_aligned(self):
        out = hbar_chart([("short", 1.0), ("a-longer-label", 2.0)], width=20)
        lines = out.split("\n")
        assert lines[0].index("1.0") == lines[1].index("2.0")

    @pytest.mark.parametrize("unit", ["", " ms", " mW"])
    def test_reference_caret_aligns_with_marker(self, unit):
        # The footer caret must sit in the same column as the ``|``
        # marker drawn through the bars, whatever the unit width.
        out = hbar_chart(
            [("a", 10.0), ("b", 30.0)],
            width=30,
            reference=("limit", 20.0),
            unit=unit,
        )
        lines = out.split("\n")
        marker_cols = {
            line.index("|") for line in lines[:-1] if "|" in line
        }
        assert len(marker_cols) == 1
        assert lines[-1].index("^") == marker_cols.pop()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            hbar_chart([], width=20)
        with pytest.raises(ConfigurationError):
            hbar_chart([("a", 1.0)], width=5)
        with pytest.raises(ConfigurationError):
            hbar_chart([("a", -1.0)])

    def test_all_zero_values(self):
        out = hbar_chart([("a", 0.0)], width=20)
        assert ZERO_MARK in out


class TestGroupedBars:
    def test_groups_titled(self):
        out = grouped_bars({"g1": {"x": 1.0}, "g2": {"x": 2.0}})
        assert "g1" in out and "g2" in out

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            grouped_bars({})
        with pytest.raises(ConfigurationError):
            grouped_bars({"g": {}})


class TestFigureCharts:
    @pytest.fixture(scope="class")
    def fig3(self):
        return run_fig3(
            frequencies_mhz=(200.0, 400.0),
            channel_counts=(1, 2),
            chunk_budget=BUDGET,
        )

    @pytest.fixture(scope="class")
    def fig5(self):
        return run_fig5(channel_counts=(1, 8), chunk_budget=BUDGET)

    def test_fig3_chart(self, fig3):
        out = fig3_chart(fig3)
        assert "200 MHz" in out and "400 MHz" in out
        assert "real-time" in out

    def test_fig4_chart(self, fig5):
        out = fig4_chart(fig5.fig4)
        assert "720p@30" in out
        assert "ms" in out

    def test_fig5_chart_zero_bars(self, fig5):
        out = fig5_chart(fig5)
        # 2160p on a single channel misses real time -> zero bar.
        assert ZERO_MARK in out
        assert "mW" in out
