"""Tests for the H.264/AVC level table."""

import pytest

from repro.errors import ConfigurationError
from repro.usecase.levels import PAPER_LEVELS, H264Level, level_by_name
from repro.usecase.formats import FORMAT_720P


class TestPaperLevels:
    def test_five_hd_levels(self):
        # Table I: "the five HD compatible encoding levels".
        assert len(PAPER_LEVELS) == 5
        assert [lvl.name for lvl in PAPER_LEVELS] == ["3.1", "3.2", "4", "4.2", "5.2"]

    def test_formats_and_rates(self):
        table = {lvl.name: (lvl.frame.name, lvl.fps) for lvl in PAPER_LEVELS}
        assert table == {
            "3.1": ("720p", 30),
            "3.2": ("720p", 60),
            "4": ("1080p", 30),
            "4.2": ("1080p", 60),
            "5.2": ("2160p", 30),
        }

    def test_bitrates_monotone(self):
        rates = [lvl.max_bitrate_mbps for lvl in PAPER_LEVELS]
        assert rates == sorted(rates)

    def test_reference_frames_default(self):
        # The calibration constant: four references for every level.
        assert all(lvl.reference_frames == 4 for lvl in PAPER_LEVELS)

    def test_frame_period(self):
        assert level_by_name("3.1").frame_period_ms == pytest.approx(33.33, abs=0.01)
        assert level_by_name("4.2").frame_period_ms == pytest.approx(16.67, abs=0.01)

    def test_column_title(self):
        assert level_by_name("4").column_title == "1080p@30 (L4)"


class TestLookup:
    def test_lookup_known(self):
        assert level_by_name("3.2").fps == 60

    def test_lookup_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            level_by_name("9.9")


class TestValidation:
    def test_rejects_bad_fps(self):
        with pytest.raises(ConfigurationError):
            H264Level("x", FORMAT_720P, fps=0, max_bitrate_mbps=10)

    def test_rejects_bad_bitrate(self):
        with pytest.raises(ConfigurationError):
            H264Level("x", FORMAT_720P, fps=30, max_bitrate_mbps=0)

    def test_rejects_zero_references(self):
        with pytest.raises(ConfigurationError):
            H264Level("x", FORMAT_720P, fps=30, max_bitrate_mbps=10,
                      reference_frames=0)
