"""Tests for audio stream parameters."""

import pytest

from repro.errors import ConfigurationError
from repro.usecase.audio import AudioStream


class TestAudioStream:
    def test_default_is_negligible_next_to_video(self):
        audio = AudioStream()
        assert audio.bitrate_mbps < 1.0

    def test_bits_per_frame(self):
        audio = AudioStream(bitrate_mbps=0.192)
        assert audio.bits_per_frame(30) == pytest.approx(6400.0)

    def test_bits_per_frame_scales_with_fps(self):
        audio = AudioStream()
        assert audio.bits_per_frame(30) == pytest.approx(2 * audio.bits_per_frame(60))

    def test_rejects_bad_bitrate(self):
        with pytest.raises(ConfigurationError):
            AudioStream(bitrate_mbps=0.0)

    def test_rejects_bad_fps(self):
        with pytest.raises(ConfigurationError):
            AudioStream().bits_per_frame(0)

    def test_rejects_bad_metadata(self):
        with pytest.raises(ConfigurationError):
            AudioStream(sample_rate_hz=0)
