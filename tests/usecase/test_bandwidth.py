"""Tests for the Table I calculator."""

import pytest

from repro.errors import ConfigurationError
from repro.usecase.bandwidth import compute_table1
from repro.usecase.levels import PAPER_LEVELS, level_by_name


@pytest.fixture(scope="module")
def table():
    return compute_table1()


class TestStructure:
    def test_five_columns(self, table):
        assert len(table.columns) == 5

    def test_stage_names_in_order(self, table):
        assert table.stage_names()[0] == "Camera I/F"
        assert table.stage_names()[-1] == "Memory card"

    def test_column_lookup(self, table):
        col = table.column_for("4")
        assert col.level.frame.name == "1080p"

    def test_column_lookup_unknown(self, table):
        with pytest.raises(ConfigurationError):
            table.column_for("1.0")

    def test_rejects_empty_levels(self):
        with pytest.raises(ConfigurationError):
            compute_table1([])


class TestTotals:
    def test_frame_total_is_image_plus_coding(self, table):
        for col in table.columns:
            assert col.frame_total_bits == pytest.approx(
                col.image_total_bits + col.coding_total_bits
            )

    def test_second_total_scales_with_fps(self, table):
        col = table.column_for("3.2")
        assert col.second_total_bits == pytest.approx(60 * col.frame_total_bits)

    def test_bandwidth_mb_per_s(self, table):
        col = table.column_for("3.1")
        assert col.bandwidth_mb_per_s == pytest.approx(
            col.second_total_bits / 8e6
        )

    def test_totals_increase_with_level_demand(self, table):
        # Demand ordering: 3.1 < 3.2 < 4 < 4.2 < 5.2 in bytes/s.
        rates = [c.bandwidth_mb_per_s for c in table.columns]
        assert rates == sorted(rates)

    def test_stage_bits_sum_to_totals(self, table):
        for col in table.columns:
            total = sum(bits for _, bits in col.stage_bits)
            assert total == pytest.approx(col.frame_total_bits)


class TestRendering:
    def test_as_rows_shape(self, table):
        rows = table.as_rows()
        # Header + 10 stages + 5 total rows.
        assert len(rows) == 16
        assert all(len(r) == 6 for r in rows)

    def test_rows_carry_stage_labels(self, table):
        labels = [r[0] for r in table.as_rows()]
        assert "Video encoder" in labels
        assert "Data Mem. load [MB/s]" in labels


class TestCustomisation:
    def test_kwargs_forwarded_to_use_case(self):
        base = compute_table1([level_by_name("3.1")])
        zoomed = compute_table1([level_by_name("3.1")], digizoom=2.0)
        assert (
            zoomed.columns[0].image_total_bits < base.columns[0].image_total_bits
        )

    def test_subset_of_levels(self):
        table = compute_table1([level_by_name("4"), level_by_name("5.2")])
        assert [c.level.name for c in table.columns] == ["4", "5.2"]
