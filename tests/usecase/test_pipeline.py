"""Tests for the Fig. 1 pipeline model, including the paper's
published bandwidth anchors."""

import pytest

from repro.errors import ConfigurationError
from repro.usecase.audio import AudioStream
from repro.usecase.levels import level_by_name
from repro.usecase.pipeline import StageTraffic, VideoRecordingUseCase


@pytest.fixture
def uc_720p30():
    return VideoRecordingUseCase(level_by_name("3.1"))


@pytest.fixture
def uc_1080p30():
    return VideoRecordingUseCase(level_by_name("4"))


class TestPaperAnchors:
    """Every numeric anchor the paper's prose preserves."""

    def test_720p30_total_1_9_gbps(self, uc_720p30):
        # Introduction: "the bandwidth requirement for the whole video
        # recording chain (720p) can be diminished down to 1.9 GB/s".
        assert uc_720p30.bandwidth_bytes_per_s() / 1e9 == pytest.approx(1.9, abs=0.06)

    def test_1080p30_total_4_3_gbps(self, uc_1080p30):
        # Abstract: "full HDTV (1080p) ... found here to require
        # 4.3 GB/s memory bandwidth".
        assert uc_1080p30.bandwidth_bytes_per_s() / 1e9 == pytest.approx(4.3, rel=0.05)

    def test_1080p_to_720p_ratio_2_2(self, uc_720p30, uc_1080p30):
        # Section IV: 1080p30 "requires approximately 2.2 times more
        # memory bandwidth compared to 720p".
        ratio = uc_1080p30.total_bits_per_frame() / uc_720p30.total_bits_per_frame()
        assert ratio == pytest.approx(2.2, abs=0.05)

    def test_1080p60_total_8_6_gbps(self):
        # Section II: "for 1080 HD at 60 fps, the total execution
        # memory bandwidth requirement is estimated to be 8.6 GB/s".
        uc = VideoRecordingUseCase(level_by_name("4.2"))
        assert uc.bandwidth_bytes_per_s() / 1e9 == pytest.approx(8.6, rel=0.06)

    def test_2160p30_within_8_channel_reach(self):
        # Abstract: an 8-channel 400 MHz memory (25.6 GB/s raw) serves
        # up to 3840x2160@30 -- so the requirement must fall between
        # the 4-channel and 8-channel capabilities.
        uc = VideoRecordingUseCase(level_by_name("5.2"))
        gbps = uc.bandwidth_bytes_per_s() / 1e9
        assert 12.8 < gbps < 25.6

    def test_encoder_is_single_most_intensive_stage(self, uc_720p30):
        # Section II: "the single most memory intensive part is the
        # video encoding".
        stages = {s.name: s.total_bits for s in uc_720p30.stages()}
        assert stages["Video encoder"] == max(stages.values())

    def test_displayctrl_constant_across_formats(self, uc_720p30, uc_1080p30):
        # Table I note: "DisplayCtrl processing is assumed to have
        # constant memory requirements regardless of original image
        # size."
        d720 = {s.name: s.total_bits for s in uc_720p30.stages()}["DisplayCtrl"]
        d1080 = {s.name: s.total_bits for s in uc_1080p30.stages()}["DisplayCtrl"]
        assert d720 == pytest.approx(d1080)


class TestStageStructure:
    def test_ten_stages_in_pipeline_order(self, uc_720p30):
        names = [s.name for s in uc_720p30.stages()]
        assert names == [
            "Camera I/F",
            "Preprocess",
            "Bayer to YUV",
            "Video stabilization",
            "Post proc & digizoom",
            "Scaling to display",
            "DisplayCtrl",
            "Video encoder",
            "Multiplex",
            "Memory card",
        ]

    def test_image_vs_coding_categories(self, uc_720p30):
        cats = {s.name: s.category for s in uc_720p30.stages()}
        assert cats["Camera I/F"] == "image"
        assert cats["DisplayCtrl"] == "image"
        assert cats["Video encoder"] == "coding"
        assert cats["Memory card"] == "coding"

    def test_camera_if_writes_sensor_frame_with_border(self, uc_720p30):
        camera = uc_720p30.stages()[0]
        assert camera.read_bits == 0
        # 1.44 N pixels at 16 bit/pel.
        assert camera.write_bits == pytest.approx(16 * 1.44 * 921_600, rel=0.01)

    def test_totals_combine_reads_and_writes(self, uc_720p30):
        # "the bandwidth numbers for each processing step combine the
        # traffic caused by both consumption and production of data."
        pre = uc_720p30.stages()[1]
        assert pre.total_bits == pre.read_bits + pre.write_bits
        assert pre.read_bits == pre.write_bits  # copy-type stage

    def test_encoder_reads_each_reference_six_times(self, uc_720p30):
        encoder = next(s for s in uc_720p30.stages() if s.name == "Video encoder")
        ref_reads = [bits for buf, bits in encoder.reads if buf.startswith("ref_")]
        assert len(ref_reads) == 4  # n_ref
        n = 921_600
        for bits in ref_reads:
            assert bits == pytest.approx(6 * 12 * n)

    def test_stream_conservation(self, uc_720p30):
        """Every bitstream read has a matching producer: the encoder
        writes what the mux reads; the mux writes what the card reads.
        (Audio originates outside the chain, per Fig. 1.)"""
        stages = {s.name: s for s in uc_720p30.stages()}
        enc_bs_write = dict(stages["Video encoder"].writes)["video_bs"]
        mux_v_read = dict(stages["Multiplex"].reads)["video_bs"]
        assert enc_bs_write == pytest.approx(mux_v_read)
        mux_out_write = dict(stages["Multiplex"].writes)["mux_out"]
        card_read = dict(stages["Memory card"].reads)["mux_out"]
        assert mux_out_write == pytest.approx(card_read)

    def test_stage_traffic_validation(self):
        with pytest.raises(ConfigurationError):
            StageTraffic("x", "bogus")
        with pytest.raises(ConfigurationError):
            StageTraffic("x", "image", reads=(("buf", -1.0),))


class TestBuffers:
    def test_buffer_names_unique(self, uc_720p30):
        names = [b.name for b in uc_720p30.buffers()]
        assert len(names) == len(set(names))

    def test_reference_frame_buffers(self, uc_720p30):
        names = [b.name for b in uc_720p30.buffers()]
        for i in range(4):
            assert f"ref_{i}" in names

    def test_every_stage_buffer_is_declared(self, uc_720p30):
        declared = {b.name for b in uc_720p30.buffers()}
        for stage in uc_720p30.stages():
            for buf, _ in stage.reads + stage.writes:
                assert buf in declared, f"{stage.name} uses undeclared {buf}"

    def test_reference_buffer_size_is_yuv420_frame(self, uc_720p30):
        ref = next(b for b in uc_720p30.buffers() if b.name == "ref_0")
        assert ref.size_bytes == (12 * 921_600 + 7) // 8


class TestParameters:
    def test_digizoom_reduces_downstream_traffic(self):
        level = level_by_name("3.1")
        base = VideoRecordingUseCase(level, digizoom=1.0)
        zoomed = VideoRecordingUseCase(level, digizoom=2.0)
        # Fig. 1: post-processing emits ~N/(z*z) pixels.
        assert zoomed.zoomed_pixels == pytest.approx(base.zoomed_pixels / 4, rel=0.01)
        assert (
            zoomed.image_processing_bits_per_frame()
            < base.image_processing_bits_per_frame()
        )

    def test_encoder_factor_scales_coding_traffic(self):
        level = level_by_name("3.1")
        six = VideoRecordingUseCase(level, encoder_factor=6.0)
        three = VideoRecordingUseCase(level, encoder_factor=3.0)
        assert six.video_coding_bits_per_frame() > (
            1.8 * three.video_coding_bits_per_frame()
        )

    def test_border_factor(self):
        level = level_by_name("3.1")
        uc = VideoRecordingUseCase(level, stabilization_border=1.0)
        assert uc.sensor_frame.pixels == level.frame.pixels

    def test_rejects_bad_parameters(self):
        level = level_by_name("3.1")
        with pytest.raises(ConfigurationError):
            VideoRecordingUseCase(level, digizoom=0.5)
        with pytest.raises(ConfigurationError):
            VideoRecordingUseCase(level, display_refresh_hz=0)
        with pytest.raises(ConfigurationError):
            VideoRecordingUseCase(level, stabilization_border=0.9)
        with pytest.raises(ConfigurationError):
            VideoRecordingUseCase(level, encoder_factor=0)

    def test_stream_rates(self):
        uc = VideoRecordingUseCase(level_by_name("4"), audio=AudioStream(0.3))
        assert uc.video_bits_per_frame == pytest.approx(20e6 / 30)
        assert uc.audio_bits_per_frame == pytest.approx(0.3e6 / 30)
        assert uc.mux_bits_per_frame == pytest.approx((20e6 + 0.3e6) / 30)

    def test_describe(self, uc_720p30):
        text = uc_720p30.describe()
        assert "720p" in text
        assert "GB/s" in text
