"""Tests for pixel and frame formats."""

import pytest

from repro.errors import ConfigurationError
from repro.usecase.formats import (
    FORMAT_1080P,
    FORMAT_2160P,
    FORMAT_720P,
    FORMAT_WVGA,
    FrameFormat,
    PixelFormat,
)


class TestPixelFormat:
    def test_paper_bit_depths(self):
        # Table I: "Bayer RGB and YUV422 encodings use 16 bits ...
        # H.264 encoded frames require 12 bits (YUV420) and the
        # displayed RGB888 format needs 24 bits per pixel."
        assert PixelFormat.BAYER_RGB.bits_per_pixel == 16
        assert PixelFormat.YUV422.bits_per_pixel == 16
        assert PixelFormat.YUV420.bits_per_pixel == 12
        assert PixelFormat.RGB888.bits_per_pixel == 24

    def test_frame_bits(self):
        assert PixelFormat.YUV420.frame_bits(100) == 1200

    def test_frame_bytes_rounds_up(self):
        assert PixelFormat.YUV420.frame_bytes(1) == 2  # 12 bits -> 2 bytes

    def test_rejects_negative_pixels(self):
        with pytest.raises(ConfigurationError):
            PixelFormat.RGB888.frame_bits(-1)

    def test_str(self):
        assert str(PixelFormat.BAYER_RGB) == "Bayer RGB"


class TestFrameFormat:
    def test_paper_rasters(self):
        assert (FORMAT_720P.width, FORMAT_720P.height) == (1280, 720)
        assert (FORMAT_1080P.width, FORMAT_1080P.height) == (1920, 1088)
        assert (FORMAT_2160P.width, FORMAT_2160P.height) == (3840, 2160)
        assert (FORMAT_WVGA.width, FORMAT_WVGA.height) == (800, 480)

    def test_pixel_counts(self):
        assert FORMAT_720P.pixels == 921_600
        assert FORMAT_1080P.pixels == 2_088_960
        assert FORMAT_2160P.pixels == 8_294_400

    def test_2160p_is_4x_1080p_area(self):
        # The paper: 2160p "needs all eight channels" because it is
        # ~4x the 1080p pixel load (bar the 1088 rounding).
        ratio = FORMAT_2160P.pixels / FORMAT_1080P.pixels
        assert ratio == pytest.approx(4.0, rel=0.01)

    def test_border_20_percent(self):
        bordered = FORMAT_720P.with_border(1.2)
        assert bordered.width == 1536
        assert bordered.height == 864
        assert bordered.pixels == pytest.approx(1.44 * FORMAT_720P.pixels, rel=1e-6)

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ConfigurationError):
            FrameFormat("bad", 0, 100)

    def test_rejects_bad_border(self):
        with pytest.raises(ConfigurationError):
            FORMAT_720P.with_border(0.0)

    def test_str(self):
        assert "1280x720" in str(FORMAT_720P)
