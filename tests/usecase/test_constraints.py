"""Tests for H.264 level-limit validation."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.usecase.constraints import (
    check_level,
    check_paper_levels,
    macroblocks,
    max_reference_frames,
)
from repro.usecase.levels import PAPER_LEVELS, level_by_name


class TestMacroblocks:
    def test_720p(self):
        assert macroblocks(1280, 720) == 80 * 45 == 3600

    def test_1088_raster(self):
        # The paper's 1920x1088 is macroblock-aligned: 120 x 68.
        assert macroblocks(1920, 1088) == 8160

    def test_rounding_up(self):
        assert macroblocks(17, 17) == 4

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            macroblocks(0, 100)


class TestPaperLevelsConform:
    def test_every_table1_column_is_legal(self):
        checks = check_paper_levels()
        for name, check in checks.items():
            assert check.conformant, (name, check.violations)

    def test_level4_dpb_holds_exactly_four_1080p_references(self):
        # The independent corroboration of the n_ref = 4 calibration:
        # 32768 MaxDpbMbs / 8160 MBs = 4.01 -> exactly 4 frames.
        assert max_reference_frames("4", 1920, 1088) == 4

    def test_level31_allows_five_720p_references(self):
        assert max_reference_frames("3.1", 1280, 720) == 5

    def test_macroblock_rates_at_the_edge(self):
        # 720p30 saturates level 3.1's MaxMBPS exactly; 720p60 does
        # the same for 3.2 -- the levels are chosen tightly.
        c31 = check_level(level_by_name("3.1"))
        assert c31.mb_rate == 108_000
        c32 = check_level(level_by_name("3.2"))
        assert c32.mb_rate == 216_000


class TestViolationsDetected:
    def test_too_many_references(self):
        level = dataclasses.replace(level_by_name("4"), reference_frames=8)
        check = check_level(level)
        assert not check.conformant
        assert any("reference frames" in v for v in check.violations)

    def test_excess_bitrate(self):
        level = dataclasses.replace(level_by_name("3.1"), max_bitrate_mbps=100.0)
        check = check_level(level)
        assert any("bitrate" in v for v in check.violations)

    def test_oversized_frame(self):
        from repro.usecase.formats import FORMAT_2160P
        from repro.usecase.levels import H264Level

        bogus = H264Level("3.1", FORMAT_2160P, fps=30, max_bitrate_mbps=10.0)
        check = check_level(bogus)
        assert any("MaxFS" in v for v in check.violations)

    def test_excess_frame_rate(self):
        level = dataclasses.replace(level_by_name("3.1"), fps=60)
        check = check_level(level)
        assert any("MaxMBPS" in v for v in check.violations)

    def test_unknown_level_rejected(self):
        from repro.usecase.formats import FORMAT_720P
        from repro.usecase.levels import H264Level

        odd = H264Level("9.9", FORMAT_720P, fps=30, max_bitrate_mbps=10.0)
        with pytest.raises(ConfigurationError):
            check_level(odd)
