"""Tests for the DRAM interconnect overhead model."""

import pytest
from hypothesis import given, strategies as st

from repro.controller.interconnect import OVERHEAD_SCALE, InterconnectModel
from repro.errors import ConfigurationError


class TestValidation:
    def test_default_is_calibrated_nonzero(self):
        model = InterconnectModel()
        assert 0.0 < model.address_cycles_per_access < 1.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            InterconnectModel(address_cycles_per_access=-0.1)
        with pytest.raises(ConfigurationError):
            InterconnectModel(address_cycles_per_access=9.0)

    def test_ideal_variant(self):
        assert InterconnectModel(0.5).ideal().address_cycles_per_access == 0.0


class TestFixedPoint:
    def test_zero_overhead(self):
        assert InterconnectModel(0.0).overhead_fixed_point == 0

    def test_whole_cycle(self):
        assert InterconnectModel(1.0).overhead_fixed_point == OVERHEAD_SCALE

    @given(st.floats(min_value=0.0, max_value=8.0, allow_nan=False))
    def test_accumulator_converges_to_average(self, overhead):
        """Simulate the engine's accumulator over many accesses: the
        inserted stalls must average to the configured overhead."""
        model = InterconnectModel(address_cycles_per_access=overhead)
        per = model.overhead_fixed_point
        acc = 0
        inserted = 0
        n = 10_000
        for _ in range(n):
            acc += per
            if acc >= OVERHEAD_SCALE:
                inserted += acc >> 12
                acc &= OVERHEAD_SCALE - 1
        assert inserted / n == pytest.approx(overhead, abs=2e-3)
