"""Tests for the channel engine: the timing heart of the simulator.

Exact cycle counts below are hand-derived from the device timing at
the given clock (see each test's comment), so a regression in any
constraint shows up as an off-by-N in a specific scenario.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.controller.engine import ChannelEngine
from repro.controller.interconnect import InterconnectModel
from repro.controller.mapping import AddressMultiplexing
from repro.controller.pagepolicy import PagePolicy
from repro.controller.queue import CommandQueueModel
from repro.controller.request import ChannelRun, Op
from repro.dram.datasheet import NEXT_GEN_MOBILE_DDR
from repro.dram.powerstate import NoPowerDown
from repro.errors import AddressError, ConfigurationError

IDEAL = InterconnectModel(address_cycles_per_access=0.0)


def make_engine(freq=400.0, **kwargs):
    kwargs.setdefault("interconnect", IDEAL)
    return ChannelEngine(NEXT_GEN_MOBILE_DDR, freq, **kwargs)


class TestSingleAccess:
    def test_single_read_400mhz(self):
        # ACT@0, RD@tRCD=6, data [12, 14): tRCD + CL + BL/2 = 14.
        r = make_engine(400.0).run([(0, 0, 1)])
        assert r.finish_cycle == 14
        assert r.counters.activates == 1
        assert r.counters.reads == 1
        assert r.counters.precharges == 0

    def test_single_read_200mhz(self):
        # tRCD=3, CL=3, burst 2 -> 8 cycles.
        r = make_engine(200.0).run([(0, 0, 1)])
        assert r.finish_cycle == 8

    def test_single_write_400mhz(self):
        # ACT@0, WR@6, data [7, 9): tRCD + WL + BL/2 = 9.
        r = make_engine(400.0).run([(1, 0, 1)])
        assert r.finish_cycle == 9
        assert r.counters.writes == 1

    def test_finish_ns(self):
        r = make_engine(400.0).run([(0, 0, 1)])
        assert r.finish_ns == pytest.approx(14 * 2.5)

    def test_bytes_moved(self):
        r = make_engine().run([(0, 0, 3)])
        assert r.bytes_moved == 48
        assert r.total_chunks == 3


class TestRowHits:
    def test_sequential_row_is_seamless(self):
        # One full 4 KB row = 256 chunks: tRCD + CL + 256 bursts
        # = 6 + 6 + 512 = 524 cycles, a single activate.
        r = make_engine().run([(0, 0, 256)])
        assert r.finish_cycle == 524
        assert r.counters.activates == 1
        assert r.bus_efficiency == pytest.approx(512 / 524)

    def test_row_hit_rate_high_for_sequential(self):
        r = make_engine().run([(0, 0, 1024)])
        assert r.counters.row_hit_rate() > 0.99

    def test_second_row_activate_overlaps_with_rbc(self):
        # RBC: chunk 256 lands in bank 1, whose activate can issue
        # while bank 0's data drains; two rows cost barely more than
        # 2x the burst time.
        r = make_engine().run([(0, 0, 512)])
        assert r.counters.activates == 2
        assert r.finish_cycle < 524 + 524  # far better than serial


class TestRowMissCost:
    def test_same_bank_conflict_pays_precharge(self):
        # Two accesses to different rows of the same bank (RBC: rows
        # 0 and 1 of bank 0 are chunks 0 and 1024).
        r = make_engine().run([(0, 0, 1), (0, 1024, 1)])
        assert r.counters.activates == 2
        assert r.counters.precharges == 1
        # First access done at 14; PRE waits for tRAS (ACT@0 + 16),
        # ACT@22 (tRP), RD@28, data end 36.
        assert r.finish_cycle == 36

    def test_tras_enforced_before_precharge(self):
        # A precharge immediately after one access must still respect
        # tRAS = 16 cycles from the activate.
        r = make_engine().run([(0, 0, 1), (0, 1024, 1)])
        # If tRAS were ignored, finish would be 14 + tRP + tRCD + CL + 2 = 34.
        assert r.finish_cycle > 34

    def test_different_banks_no_precharge(self):
        # Chunks 0 and 256 are different banks under RBC: both rows
        # stay open.
        r = make_engine().run([(0, 0, 1), (0, 256, 1)])
        assert r.counters.precharges == 0
        assert r.counters.activates == 2


class TestTurnaround:
    def test_write_to_read_pays_twtr(self):
        seq = make_engine().run([(0, 0, 8)])
        mixed = make_engine().run([(1, 0, 4), (0, 256, 4)])
        # Mixed stream must be slower than the same volume of reads:
        # the W->R switch exposes tWTR + CL.
        assert mixed.finish_cycle > seq.finish_cycle

    def test_alternating_directions_slower_than_batched(self):
        batched = make_engine().run([(0, 0, 32), (1, 512, 32)])
        alternating = make_engine().run(
            [(0, i, 1) if i % 2 == 0 else (1, 512 + i, 1) for i in range(64)]
        )
        assert alternating.finish_cycle > batched.finish_cycle

    def test_rw_counts(self):
        r = make_engine().run([(0, 0, 4), (1, 256, 4), (0, 8, 4)])
        assert r.chunks_read == 8
        assert r.chunks_written == 4


class TestRefresh:
    def test_refresh_count_matches_trefi(self):
        # 100k sequential reads at 400 MHz run ~206k cycles;
        # tREFI = 3120 cycles -> floor(finish / 3120) refreshes.
        r = make_engine().run([(0, 0, 100_000)])
        assert r.counters.refreshes == r.finish_cycle // 3120

    def test_short_run_has_no_refresh(self):
        r = make_engine().run([(0, 0, 64)])
        assert r.counters.refreshes == 0

    def test_refresh_closes_rows(self):
        # After a refresh the open row must be re-activated: over a
        # long single-row... not directly observable, but activates
        # must exceed the row count when refreshes interleave.
        r = make_engine().run([(0, 0, 4096)])  # 16 rows
        assert r.counters.refreshes >= 2
        assert r.counters.activates >= 16 + r.counters.refreshes

    def test_refresh_overhead_is_small(self):
        r = make_engine().run([(0, 0, 50_000)])
        assert r.bus_efficiency > 0.9


class TestClosedPage:
    def test_closed_page_precharges_every_access(self):
        r = make_engine(page_policy=PagePolicy.CLOSED).run([(0, 0, 2)])
        assert r.counters.precharges == 2
        assert r.counters.activates == 2
        assert r.finish_cycle == 39  # measured reference (see git history)

    def test_closed_much_slower_on_streaming(self):
        open_r = make_engine().run([(0, 0, 512)])
        closed_r = make_engine(page_policy=PagePolicy.CLOSED).run([(0, 0, 512)])
        assert closed_r.finish_cycle > 2 * open_r.finish_cycle

    def test_closed_page_zero_row_hits(self):
        r = make_engine(page_policy=PagePolicy.CLOSED).run([(0, 0, 100)])
        assert r.counters.row_hit_rate() == 0.0


class TestPowerDown:
    def test_idle_gap_enters_power_down(self):
        r = make_engine().run([(0, 0, 1, 0), (0, 8, 1, 1000)])
        assert r.counters.power_down_entries == 1
        assert r.counters.power_down_exits == 1
        # Gap = 1000 - 14 busy cycles; residency = gap - 1 detection
        # cycle = 985; 2.5 ns per cycle.
        assert r.states.active_powerdown_ns == pytest.approx(985 * 2.5)
        # Exit penalty tXP=2 delays the read: 1000 + 2 + CL + burst.
        assert r.finish_cycle == 1010

    def test_no_power_down_policy_idles_in_standby(self):
        r = make_engine(power_down=NoPowerDown()).run(
            [(0, 0, 1, 0), (0, 8, 1, 1000)]
        )
        assert r.counters.power_down_entries == 0
        assert r.states.active_powerdown_ns == 0.0
        # No tXP penalty: finishes 2 cycles earlier.
        assert r.finish_cycle == 1008

    def test_backlogged_stream_never_powers_down(self):
        r = make_engine().run([(0, 0, 64), (1, 512, 64)])
        assert r.counters.power_down_entries == 0

    def test_state_durations_cover_finish(self):
        r = make_engine().run([(0, 0, 1, 0), (0, 8, 1, 1000)])
        assert r.states.total_ns() == pytest.approx(r.finish_ns)

    def test_open_page_books_active_states(self):
        # Open page keeps rows open across the idle gap: CKE drops
        # with banks active, so residency is IDD3-class.
        r = make_engine().run([(0, 0, 1, 0), (0, 8, 1, 1000)])
        assert r.states.active_powerdown_ns > 0
        assert r.states.precharge_powerdown_ns == 0.0
        assert r.states.precharge_standby_ns == 0.0

    def test_closed_page_books_precharged_states(self):
        # Closed page precharges after every access, so the same idle
        # gap is spent with all banks closed: both the standby and the
        # power-down residency must be booked to the precharged
        # (IDD2-class) states, not the active ones.
        r = make_engine(page_policy=PagePolicy.CLOSED).run(
            [(0, 0, 1, 0), (0, 8, 1, 1000)]
        )
        assert r.counters.power_down_entries == 1
        assert r.states.precharge_powerdown_ns > 0
        assert r.states.precharge_standby_ns > 0
        assert r.states.active_powerdown_ns == 0.0
        assert r.states.active_standby_ns == 0.0
        assert r.states.total_ns() == pytest.approx(r.finish_ns)


class TestBrcVsRbc:
    def test_brc_sequential_slower_than_rbc(self):
        # Section IV: RBC achieved "somewhat better performance".
        # 8 rows of sequential data: BRC pays same-bank precharges.
        rbc = make_engine().run([(0, 0, 2048)])
        brc = make_engine(multiplexing=AddressMultiplexing.BRC).run([(0, 0, 2048)])
        assert brc.finish_cycle > rbc.finish_cycle

    def test_brc_pays_precharges_on_streaming(self):
        brc = make_engine(multiplexing=AddressMultiplexing.BRC).run([(0, 0, 2048)])
        rbc = make_engine().run([(0, 0, 2048)])
        assert brc.counters.precharges > rbc.counters.precharges


class TestQueueDepth:
    def test_deeper_queue_hides_row_misses(self):
        shallow = make_engine(queue=CommandQueueModel(depth=1)).run([(0, 0, 4096)])
        deep = make_engine(queue=CommandQueueModel(depth=16)).run([(0, 0, 4096)])
        assert deep.finish_cycle <= shallow.finish_cycle


class TestInterconnectOverhead:
    def test_overhead_slows_stream_by_expected_fraction(self):
        ideal = make_engine().run([(0, 0, 10_000)])
        real = ChannelEngine(
            NEXT_GEN_MOBILE_DDR, 400.0,
            interconnect=InterconnectModel(address_cycles_per_access=0.5),
        ).run([(0, 0, 10_000)])
        # 0.5 extra cycles per 2-cycle burst: ~25 % more time.
        ratio = real.finish_cycle / ideal.finish_cycle
        assert ratio == pytest.approx(1.25, abs=0.02)


class TestOverheadAccumulatorScale:
    """The hot loop's stall insertion must stay in sync with
    OVERHEAD_SCALE: the shift is derived, never hardcoded."""

    def test_shift_derived_from_scale(self):
        from repro.controller.interconnect import OVERHEAD_SCALE, OVERHEAD_SHIFT

        assert 1 << OVERHEAD_SHIFT == OVERHEAD_SCALE

    @pytest.mark.parametrize("ovh", [0.2, 0.45, 0.95])
    def test_long_run_average_stall_matches_configuration(self, ovh):
        # The regression oracle for the fixed-point accumulator: over a
        # long run the *average* extra stall per access converges to
        # the configured address_cycles_per_access.  A mismatched
        # shift/scale pair would insert 2^k times too many (or too
        # few) stall cycles and miss this by a wide margin.
        n = 20_000
        ideal = make_engine().run([(0, 0, n)])
        real = ChannelEngine(
            NEXT_GEN_MOBILE_DDR,
            400.0,
            interconnect=InterconnectModel(address_cycles_per_access=ovh),
        ).run([(0, 0, n)])
        per_access = (real.finish_cycle - ideal.finish_cycle) / n
        # Tolerance covers the handful of extra refresh periods the
        # slower run crosses (tens of cycles over 20k accesses).
        assert per_access == pytest.approx(ovh, abs=0.03)


class TestInputHandling:
    def test_accepts_channel_run_objects(self):
        r = make_engine().run([ChannelRun(Op.READ, 0, 4)])
        assert r.chunks_read == 4

    def test_accepts_three_tuples(self):
        r = make_engine().run([(0, 0, 4)])
        assert r.chunks_read == 4

    def test_rejects_bad_op(self):
        with pytest.raises(ConfigurationError):
            make_engine().run([(3, 0, 4)])

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ConfigurationError):
            make_engine().run([(0, 0, 0)])

    def test_rejects_bad_op_in_channel_run(self):
        # ChannelRun does not validate op at construction; the engine
        # must apply the same checks to both input forms instead of
        # trusting the object wrapper.
        with pytest.raises(ConfigurationError):
            make_engine().run([ChannelRun(3, 0, 4)])

    def test_rejects_corrupted_channel_run_count(self):
        run = ChannelRun(Op.READ, 0, 4)
        object.__setattr__(run, "count", 0)
        with pytest.raises(ConfigurationError):
            make_engine().run([run])

    def test_rejects_corrupted_channel_run_start(self):
        run = ChannelRun(Op.READ, 0, 4)
        object.__setattr__(run, "start_chunk", -1)
        with pytest.raises(ConfigurationError):
            make_engine().run([run])

    def test_rejects_over_capacity_run(self):
        max_chunk = NEXT_GEN_MOBILE_DDR.geometry.capacity_bytes >> 4
        with pytest.raises(AddressError):
            make_engine().run([(0, max_chunk - 1, 2)])

    def test_empty_stream(self):
        r = make_engine().run([])
        assert r.finish_cycle == 0
        assert r.total_chunks == 0
        assert r.bus_efficiency == 0.0

    def test_rejects_invalid_frequency(self):
        with pytest.raises(ConfigurationError):
            ChannelEngine(NEXT_GEN_MOBILE_DDR, 50.0)


class TestDeterminismAndMonotonicity:
    def test_deterministic(self):
        runs = [(0, 0, 100), (1, 4096, 100), (0, 200, 50)]
        a = make_engine().run(runs)
        b = make_engine().run(runs)
        assert a.finish_cycle == b.finish_cycle
        assert a.counters.as_dict() == b.counters.as_dict()

    @given(st.integers(min_value=1, max_value=2000))
    @settings(max_examples=20, deadline=None)
    def test_time_monotone_in_traffic(self, count):
        shorter = make_engine().run([(0, 0, count)])
        longer = make_engine().run([(0, 0, count + 100)])
        assert longer.finish_cycle > shorter.finish_cycle

    @given(st.sampled_from([200.0, 266.0, 333.0, 400.0, 466.0, 533.0]))
    @settings(max_examples=6, deadline=None)
    def test_time_ns_decreases_with_frequency(self, freq):
        base = make_engine(200.0).run([(0, 0, 2000)])
        faster = make_engine(freq).run([(0, 0, 2000)])
        assert faster.finish_ns <= base.finish_ns + 1e-6

    def test_frequency_doubling_near_doubles_throughput(self):
        # The Fig. 3 "close to 2x" trend at the engine level.
        slow = make_engine(200.0).run([(0, 0, 50_000)])
        fast = make_engine(400.0).run([(0, 0, 50_000)])
        speedup = slow.finish_ns / fast.finish_ns
        assert 1.8 <= speedup <= 2.1


class TestBankStatistics:
    def test_sequential_traffic_balances_banks(self):
        # Full rotations through all four banks (RBC): balanced.
        r = make_engine().run([(0, 0, 4096)])
        assert len(r.bank_accesses) == 4
        assert sum(r.bank_accesses) == 4096
        assert r.bank_balance == 1.0

    def test_single_row_hits_one_bank(self):
        r = make_engine().run([(0, 0, 256)])
        assert r.bank_accesses == (256, 0, 0, 0)
        assert r.bank_balance == 0.0

    def test_xor_mapping_rebalances_row_strides(self):
        runs = [(0, i * 1024, 4) for i in range(64)]
        plain = make_engine().run(runs)
        xor = make_engine(multiplexing=AddressMultiplexing.RBC_XOR).run(runs)
        assert plain.bank_balance == 0.0
        assert xor.bank_balance == 1.0

    def test_empty_run_balance(self):
        assert make_engine().run([]).bank_balance == 1.0


class TestFrequencyBoundaries:
    """Exact behaviour at the device's clock range edges."""

    def test_533mhz_single_read(self):
        # tCK = 1.876 ns: tRCD = ceil(15/1.876) = 8, CL = 8, burst 2.
        r = make_engine(533.0).run([(0, 0, 1)])
        assert r.finish_cycle == 8 + 8 + 2

    def test_boundary_frequencies_accepted(self):
        make_engine(200.0).run([(0, 0, 4)])
        make_engine(533.0).run([(0, 0, 4)])

    def test_just_outside_boundaries_rejected(self):
        with pytest.raises(ConfigurationError):
            make_engine(199.9)
        with pytest.raises(ConfigurationError):
            make_engine(533.1)


class TestCombinedPolicies:
    def test_brc_closed_page_protocol_clean(self):
        engine = make_engine(
            multiplexing=AddressMultiplexing.BRC,
            page_policy=PagePolicy.CLOSED,
        )
        log = []
        engine.run([(0, 0, 300), (1, 4096, 100)], command_log=log)
        assert engine.make_checker().check(log) == []

    def test_depth_one_queue_closed_page(self):
        engine = make_engine(
            queue=CommandQueueModel(depth=1), page_policy=PagePolicy.CLOSED
        )
        r = engine.run([(0, 0, 64)])
        assert r.chunks_read == 64

    def test_capacity_edge_run_accepted(self):
        max_chunk = NEXT_GEN_MOBILE_DDR.geometry.capacity_bytes >> 4
        r = make_engine().run([(0, max_chunk - 8, 8)])
        assert r.total_chunks == 8


class TestFourActivateWindow:
    def test_default_device_never_bound_by_tfaw(self):
        """On the 4-bank default device the fifth ACT revisits a bank,
        so tRC (22 cyc) always dominates tFAW (20 cyc): the window is
        modelled but never the limiter (the 8-bank custom-device test
        exercises the binding case)."""
        runs = [(0, i * 256, 1) for i in range(5)]
        log = []
        engine = make_engine()
        engine.run(runs, command_log=log)
        from repro.dram.commands import Command

        acts = [rec.cycle for rec in log if rec.command is Command.ACTIVATE]
        assert len(acts) == 5
        assert acts[4] - acts[0] >= 20
        assert engine.make_checker().check(log) == []

    def test_sequential_streaming_unaffected(self):
        """Row-hit streams issue ACTs ~512 cycles apart: tFAW never
        binds and the calibrated results stay put."""
        r = make_engine().run([(0, 0, 1024)])
        assert r.finish_cycle == pytest.approx(2060, abs=30)
