"""Tests for the FR-FCFS reordering engine."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.controller.engine import ChannelEngine
from repro.controller.frfcfs import ReorderingChannelEngine
from repro.controller.interconnect import InterconnectModel
from repro.controller.mapping import AddressMultiplexing
from repro.dram.datasheet import NEXT_GEN_MOBILE_DDR
from repro.errors import AddressError, ConfigurationError

IDEAL = InterconnectModel(0.0)


def make_frfcfs(**kwargs):
    kwargs.setdefault("interconnect", IDEAL)
    return ReorderingChannelEngine(NEXT_GEN_MOBILE_DDR, 400.0, **kwargs)


def make_fcfs():
    return ChannelEngine(NEXT_GEN_MOBILE_DDR, 400.0, interconnect=IDEAL)


def interleaved_bank_conflicts(pairs=200):
    """Alternating accesses to two conflicting rows of the same bank
    (RBC rows 0 and 1 of bank 0 are chunks 0.. and 1024..): the worst
    case for in-order scheduling, prime reordering territory."""
    runs = []
    for i in range(pairs):
        runs.append((0, i % 256, 1))          # bank 0, row 0
        runs.append((0, 1024 + (i % 256), 1))  # bank 0, row 1
    return runs


class TestBasics:
    def test_single_read_matches_fcfs(self):
        assert make_frfcfs().run([(0, 0, 1)]).finish_cycle == 14

    def test_counts_preserved(self):
        r = make_frfcfs().run([(0, 0, 100), (1, 4096, 50)])
        assert r.chunks_read == 100
        assert r.chunks_written == 50

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ReorderingChannelEngine(NEXT_GEN_MOBILE_DDR, 400.0, window=0)
        with pytest.raises(ConfigurationError):
            ReorderingChannelEngine(NEXT_GEN_MOBILE_DDR, 400.0, max_skips=0)
        with pytest.raises(ConfigurationError):
            ReorderingChannelEngine(NEXT_GEN_MOBILE_DDR, 100.0)

    def test_over_capacity_rejected(self):
        max_chunk = NEXT_GEN_MOBILE_DDR.geometry.capacity_bytes >> 4
        with pytest.raises(AddressError):
            make_frfcfs().run([(0, max_chunk - 1, 2)])

    def test_empty_stream(self):
        r = make_frfcfs().run([])
        assert r.finish_cycle == 0

    def test_deterministic(self):
        runs = interleaved_bank_conflicts(50)
        a = make_frfcfs().run(runs)
        b = make_frfcfs().run(runs)
        assert a.finish_cycle == b.finish_cycle


class TestReorderingWins:
    def test_beats_fcfs_on_bank_conflicts(self):
        runs = interleaved_bank_conflicts()
        fcfs = make_fcfs().run(runs)
        frfcfs = make_frfcfs().run(runs)
        # FR-FCFS batches row hits and slashes the activate count.
        assert frfcfs.finish_cycle < 0.7 * fcfs.finish_cycle
        assert frfcfs.counters.activates < fcfs.counters.activates

    def test_row_hit_rate_improves(self):
        runs = interleaved_bank_conflicts()
        fcfs = make_fcfs().run(runs)
        frfcfs = make_frfcfs().run(runs)
        assert frfcfs.counters.row_hit_rate() > fcfs.counters.row_hit_rate()

    def test_window_one_degenerates_to_fcfs_order(self):
        runs = interleaved_bank_conflicts(50)
        narrow = make_frfcfs(window=1).run(runs)
        wide = make_frfcfs(window=32).run(runs)
        assert wide.finish_cycle < narrow.finish_cycle

    def test_sequential_traffic_gains_nothing(self):
        # The paper's workload: already row-friendly, so reordering
        # changes little -- validating the paper's in-order model.
        runs = [(0, 0, 4096)]
        fcfs = make_fcfs().run(runs)
        frfcfs = make_frfcfs().run(runs)
        assert frfcfs.finish_cycle == pytest.approx(fcfs.finish_cycle, rel=0.05)


class TestFairness:
    def test_aging_bound_prevents_starvation(self):
        # A long row-0 stream with one row-1 request in the middle:
        # the miss must still complete within the run (it does, since
        # the stream is finite), and with a tight bound it must be
        # issued before the hit stream ends.
        runs = [(0, 0, 200), (0, 1024, 1), (0, 200, 56)]
        tight = make_frfcfs(window=8, max_skips=2).run(runs, command_log=[])
        assert tight.chunks_read == 257

    def test_max_skips_trades_throughput(self):
        runs = interleaved_bank_conflicts(100)
        patient = make_frfcfs(max_skips=64).run(runs)
        impatient = make_frfcfs(max_skips=1).run(runs)
        assert patient.finish_cycle <= impatient.finish_cycle


class TestProtocolCleanliness:
    @pytest.mark.parametrize(
        "runs",
        [
            [(0, 0, 2000)],
            interleaved_bank_conflicts(150),
            [(0, 0, 64, 0), (1, 4096, 64, 3000), (0, 128, 64, 9000)],
        ],
        ids=["sequential", "conflicts", "gappy"],
    )
    def test_emitted_stream_is_clean(self, runs):
        engine = make_frfcfs()
        log = []
        engine.run(runs, command_log=log)
        assert engine.make_checker().check(log) == []

    @given(
        runs=st.lists(
            st.tuples(
                st.integers(0, 1),
                st.integers(0, 2**18),
                st.integers(1, 200),
                st.integers(0, 20_000),
            ),
            min_size=1,
            max_size=20,
        ),
        scheme=st.sampled_from(
            [AddressMultiplexing.RBC, AddressMultiplexing.RBC_XOR]
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_workloads_clean(self, runs, scheme):
        engine = ReorderingChannelEngine(
            NEXT_GEN_MOBILE_DDR, 400.0, multiplexing=scheme, interconnect=IDEAL
        )
        log = []
        engine.run(runs, command_log=log)
        violations = engine.make_checker().check(log)
        assert violations == [], violations[:3]
