"""Tests for the command-queue model."""

import pytest

from repro.controller.queue import CommandQueueModel
from repro.errors import ConfigurationError


class TestCommandQueueModel:
    def test_default_depth(self):
        assert CommandQueueModel().depth == 8

    def test_ring_size_matches_depth(self):
        ring = CommandQueueModel(depth=4).make_ring()
        assert ring == [0, 0, 0, 0]

    def test_rings_are_independent(self):
        model = CommandQueueModel(depth=2)
        a = model.make_ring()
        b = model.make_ring()
        a[0] = 99
        assert b[0] == 0

    def test_rejects_bad_depth(self):
        with pytest.raises(ConfigurationError):
            CommandQueueModel(depth=0)
        with pytest.raises(ConfigurationError):
            CommandQueueModel(depth=5000)
