"""Tests for RBC/BRC address multiplexing."""

import pytest
from hypothesis import given, strategies as st

from repro.controller.mapping import AddressMapping, AddressMultiplexing
from repro.dram.datasheet import NEXT_GEN_MOBILE_DDR
from repro.errors import AddressError

GEO = NEXT_GEN_MOBILE_DDR.geometry
RBC = AddressMapping.build(GEO, AddressMultiplexing.RBC)
BRC = AddressMapping.build(GEO, AddressMultiplexing.BRC)

# 4 KB row = 256 chunks.
CHUNKS_PER_ROW = 256


class TestRbcStructure:
    """RBC: a sequential stream walks columns, then banks, then rows."""

    def test_first_row_first_bank(self):
        assert RBC.decode_chunk(0) == (0, 0)
        assert RBC.decode_chunk(CHUNKS_PER_ROW - 1) == (0, 0)

    def test_row_boundary_switches_bank(self):
        # The property that lets activations overlap: crossing a row's
        # worth of addresses lands in the *next bank*, same row.
        assert RBC.decode_chunk(CHUNKS_PER_ROW) == (1, 0)
        assert RBC.decode_chunk(2 * CHUNKS_PER_ROW) == (2, 0)
        assert RBC.decode_chunk(3 * CHUNKS_PER_ROW) == (3, 0)

    def test_wraps_to_next_row_after_all_banks(self):
        assert RBC.decode_chunk(4 * CHUNKS_PER_ROW) == (0, 1)

    def test_chunks_per_row(self):
        assert RBC.chunks_per_row == CHUNKS_PER_ROW


class TestBrcStructure:
    """BRC: a sequential stream exhausts one bank before the next."""

    def test_row_boundary_stays_in_bank(self):
        # The performance difference the paper measured: same-bank row
        # crossings cannot overlap precharge with activation.
        assert BRC.decode_chunk(0) == (0, 0)
        assert BRC.decode_chunk(CHUNKS_PER_ROW) == (0, 1)

    def test_bank_switch_after_whole_bank(self):
        chunks_per_bank = GEO.bank_bytes // 16
        assert BRC.decode_chunk(chunks_per_bank - 1) == (0, GEO.rows_per_bank - 1)
        assert BRC.decode_chunk(chunks_per_bank) == (1, 0)


class TestDecodeEncode:
    @pytest.mark.parametrize("mapping", [RBC, BRC], ids=["rbc", "brc"])
    def test_decode_address_matches_decode_chunk(self, mapping):
        addr = 0x123450
        bank, row, col = mapping.decode_address(addr)
        bank2, row2 = mapping.decode_chunk(addr >> 4)
        assert (bank, row) == (bank2, row2)

    @pytest.mark.parametrize("mapping", [RBC, BRC], ids=["rbc", "brc"])
    def test_column_is_word_index(self, mapping):
        _, _, col = mapping.decode_address(0)
        assert col == 0
        _, _, col = mapping.decode_address(4)
        assert col == 1

    @pytest.mark.parametrize("mapping", [RBC, BRC], ids=["rbc", "brc"])
    @given(data=st.data())
    def test_encode_decode_bijection(self, mapping, data):
        bank = data.draw(st.integers(0, GEO.banks - 1))
        row = data.draw(st.integers(0, GEO.rows_per_bank - 1))
        col = data.draw(st.integers(0, GEO.columns_per_row - 1))
        addr = mapping.encode(bank, row, col)
        assert mapping.decode_address(addr) == (bank, row, col)

    @pytest.mark.parametrize("mapping", [RBC, BRC], ids=["rbc", "brc"])
    @given(addr=st.integers(0, GEO.capacity_bytes - 1))
    def test_decode_encode_round_trip(self, mapping, addr):
        bank, row, col = mapping.decode_address(addr)
        rebuilt = mapping.encode(bank, row, col)
        # Encoding loses only the in-word byte offset.
        assert rebuilt == addr - (addr % 4)
        assert mapping.decode_address(rebuilt) == (bank, row, col)

    def test_out_of_range_chunk_rejected(self):
        with pytest.raises(AddressError):
            RBC.decode_chunk(GEO.capacity_bytes >> 4)
        with pytest.raises(AddressError):
            RBC.decode_chunk(-1)

    def test_encode_validates_fields(self):
        with pytest.raises(AddressError):
            RBC.encode(GEO.banks, 0, 0)
        with pytest.raises(AddressError):
            RBC.encode(0, GEO.rows_per_bank, 0)
        with pytest.raises(AddressError):
            RBC.encode(0, 0, GEO.columns_per_row)


class TestBanksBetween:
    def test_same_row_same_bank(self):
        assert not RBC.banks_between(0, 1)

    def test_rbc_row_crossing_changes_bank(self):
        assert RBC.banks_between(CHUNKS_PER_ROW - 1, CHUNKS_PER_ROW)

    def test_brc_row_crossing_keeps_bank(self):
        assert not BRC.banks_between(CHUNKS_PER_ROW - 1, CHUNKS_PER_ROW)


class TestSchemesDiffer:
    @given(st.integers(0, (GEO.capacity_bytes >> 4) - 1))
    def test_both_schemes_cover_same_space(self, chunk):
        # Both decodes are valid (no exception) everywhere.
        b1, r1 = RBC.decode_chunk(chunk)
        b2, r2 = BRC.decode_chunk(chunk)
        assert 0 <= b1 < GEO.banks and 0 <= r1 < GEO.rows_per_bank
        assert 0 <= b2 < GEO.banks and 0 <= r2 < GEO.rows_per_bank


XOR = AddressMapping.build(GEO, AddressMultiplexing.RBC_XOR)


class TestRbcXorStructure:
    """RBC with the row's low bits XOR-folded into the bank index."""

    def test_row_zero_matches_rbc(self):
        # Row 0 XORs nothing: identical to plain RBC.
        for chunk in range(0, 4 * CHUNKS_PER_ROW, 17):
            assert XOR.decode_chunk(chunk) == RBC.decode_chunk(chunk)

    def test_row_stride_spreads_banks(self):
        # Walking the same RBC bank at row stride 1 (chunk stride =
        # banks * chunks/row) hits a different bank every row under
        # the XOR scheme -- the conflict-avoidance property.
        stride = GEO.banks * CHUNKS_PER_ROW
        rbc_banks = {RBC.decode_chunk(i * stride)[0] for i in range(4)}
        xor_banks = {XOR.decode_chunk(i * stride)[0] for i in range(4)}
        assert rbc_banks == {0}
        assert xor_banks == {0, 1, 2, 3}

    def test_rows_unchanged_by_folding(self):
        for chunk in range(0, 16 * CHUNKS_PER_ROW, 97):
            assert XOR.decode_chunk(chunk)[1] == RBC.decode_chunk(chunk)[1]

    @given(data=st.data())
    def test_encode_decode_bijection(self, data):
        bank = data.draw(st.integers(0, GEO.banks - 1))
        row = data.draw(st.integers(0, GEO.rows_per_bank - 1))
        col = data.draw(st.integers(0, GEO.columns_per_row - 1))
        addr = XOR.encode(bank, row, col)
        assert XOR.decode_address(addr) == (bank, row, col)

    @given(addr=st.integers(0, GEO.capacity_bytes - 1))
    def test_decode_encode_round_trip(self, addr):
        bank, row, col = XOR.decode_address(addr)
        assert XOR.encode(bank, row, col) == addr - (addr % 4)

    def test_sequential_stream_still_rotates_banks(self):
        # Sequential locality (the paper's workload) is preserved:
        # consecutive rows' worth of chunks land in distinct banks.
        banks = [XOR.decode_chunk(i * CHUNKS_PER_ROW)[0] for i in range(4)]
        assert len(set(banks)) == 4


class TestXorEnginePerformance:
    def test_row_strided_traffic_faster_under_xor(self):
        from repro.controller.engine import ChannelEngine
        from repro.dram.datasheet import NEXT_GEN_MOBILE_DDR

        # Chunk stride of one full bank rotation (banks x chunks/row):
        # plain RBC hammers bank 0 row after row; XOR spreads it.
        runs = [(0, i * GEO.banks * CHUNKS_PER_ROW, 4) for i in range(256)]
        results = {}
        for scheme in (AddressMultiplexing.RBC, AddressMultiplexing.RBC_XOR):
            engine = ChannelEngine(NEXT_GEN_MOBILE_DDR, 400.0, multiplexing=scheme)
            results[scheme] = engine.run(runs).finish_cycle
        assert results[AddressMultiplexing.RBC_XOR] <= results[AddressMultiplexing.RBC]
