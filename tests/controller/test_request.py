"""Tests for master transactions and channel runs."""

import pytest
from hypothesis import given, strategies as st

from repro.controller.request import (
    CHUNK_BYTES,
    ChannelRun,
    MasterTransaction,
    Op,
)
from repro.errors import ConfigurationError


class TestOp:
    def test_int_values_for_hot_loop(self):
        assert int(Op.READ) == 0
        assert int(Op.WRITE) == 1

    def test_str(self):
        assert str(Op.READ) == "R"
        assert str(Op.WRITE) == "W"


class TestMasterTransaction:
    def test_basic_fields(self):
        txn = MasterTransaction(Op.READ, 0x1000, 256)
        assert txn.end_address == 0x1100
        assert txn.arrival_ns == 0.0

    def test_rejects_negative_address(self):
        with pytest.raises(ConfigurationError):
            MasterTransaction(Op.READ, -1, 16)

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ConfigurationError):
            MasterTransaction(Op.READ, 0, 0)

    def test_rejects_negative_arrival(self):
        with pytest.raises(ConfigurationError):
            MasterTransaction(Op.READ, 0, 16, arrival_ns=-1.0)

    @pytest.mark.parametrize(
        "stamp", [float("nan"), float("inf"), float("-inf")]
    )
    def test_rejects_non_finite_arrival(self, stamp):
        # NaN sails through `< 0` (every NaN comparison is False), so
        # the constructor must check finiteness explicitly.
        with pytest.raises(ConfigurationError, match="finite"):
            MasterTransaction(Op.READ, 0, 16, arrival_ns=stamp)

    def test_accepts_none_and_zero_arrival(self):
        assert MasterTransaction(Op.READ, 0, 16, arrival_ns=None).arrival_ns is None
        assert MasterTransaction(Op.READ, 0, 16, arrival_ns=0.0).arrival_ns == 0.0

    def test_chunk_span_aligned(self):
        txn = MasterTransaction(Op.READ, 0, 64)
        assert list(txn.chunk_span()) == [0, 1, 2, 3]

    def test_chunk_span_unaligned_head_and_tail(self):
        # Bytes [8, 24) touch chunks 0 and 1: partial chunks cost a
        # full burst each.
        txn = MasterTransaction(Op.WRITE, 8, 16)
        assert list(txn.chunk_span()) == [0, 1]

    def test_chunk_span_single_byte(self):
        txn = MasterTransaction(Op.READ, 17, 1)
        assert list(txn.chunk_span()) == [1]

    @given(
        st.integers(min_value=0, max_value=2**30),
        st.integers(min_value=1, max_value=2**20),
    )
    def test_chunk_span_covers_transaction(self, addr, size):
        txn = MasterTransaction(Op.READ, addr, size)
        span = txn.chunk_span()
        assert span.start * CHUNK_BYTES <= addr
        assert span.stop * CHUNK_BYTES >= addr + size
        # Never over-covers by a whole chunk on either side.
        assert (span.start + 1) * CHUNK_BYTES > addr
        assert (span.stop - 1) * CHUNK_BYTES < addr + size


class TestChannelRun:
    def test_bytes_moved(self):
        run = ChannelRun(Op.READ, 0, 10)
        assert run.bytes_moved == 160

    def test_rejects_bad_fields(self):
        with pytest.raises(ConfigurationError):
            ChannelRun(Op.READ, -1, 1)
        with pytest.raises(ConfigurationError):
            ChannelRun(Op.READ, 0, 0)
        with pytest.raises(ConfigurationError):
            ChannelRun(Op.READ, 0, 1, arrival_cycle=-5)
