"""Tests for the page-policy enum."""

from repro.controller.pagepolicy import PagePolicy


class TestPagePolicy:
    def test_open_keeps_rows(self):
        assert PagePolicy.OPEN.keeps_rows_open

    def test_closed_does_not(self):
        assert not PagePolicy.CLOSED.keeps_rows_open

    def test_str(self):
        assert str(PagePolicy.OPEN) == "open"
        assert str(PagePolicy.CLOSED) == "closed"
