"""Unit-conversion tests."""

import math

import pytest
from hypothesis import given, strategies as st

from repro import units
from repro.errors import ReproError


class TestInformation:
    def test_bits_to_bytes(self):
        assert units.bits_to_bytes(16) == 2.0

    def test_bytes_to_bits(self):
        assert units.bytes_to_bits(2) == 16

    def test_megabits(self):
        assert units.bits_to_megabits(5e6) == 5.0
        assert units.megabits_to_bits(5.0) == 5e6

    def test_bytes_to_megabytes_is_decimal(self):
        assert units.bytes_to_megabytes(10**6) == 1.0

    def test_bytes_to_gigabytes_is_decimal(self):
        assert units.bytes_to_gigabytes(1.9e9) == pytest.approx(1.9)

    @given(st.floats(min_value=0, max_value=1e15, allow_nan=False))
    def test_bits_bytes_round_trip(self, bits):
        assert units.bytes_to_bits(units.bits_to_bytes(bits)) == pytest.approx(bits)


class TestTime:
    def test_ns_to_ms(self):
        assert units.ns_to_ms(33.3e6) == pytest.approx(33.3)

    def test_ms_to_ns(self):
        assert units.ms_to_ns(1.0) == 1e6

    def test_s_ns_round_trip(self):
        assert units.ns_to_s(units.s_to_ns(0.5)) == pytest.approx(0.5)

    def test_clock_period_200mhz(self):
        assert units.clock_period_ns(200.0) == pytest.approx(5.0)

    def test_clock_period_533mhz(self):
        assert units.clock_period_ns(533.0) == pytest.approx(1.876, abs=1e-3)

    def test_clock_period_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.clock_period_ns(0.0)
        with pytest.raises(ValueError):
            units.clock_period_ns(-100.0)


class TestNsToCycles:
    def test_exact_multiple(self):
        # 15 ns at 5 ns period -> exactly 3 cycles.
        assert units.ns_to_cycles(15.0, 200.0) == 3

    def test_rounds_up(self):
        # 15 ns at 266 MHz (~3.76 ns) -> 4 cycles, never 3.
        assert units.ns_to_cycles(15.0, 266.0) == 4

    def test_zero_and_negative(self):
        assert units.ns_to_cycles(0.0, 400.0) == 0
        assert units.ns_to_cycles(-5.0, 400.0) == 0

    @given(
        st.floats(min_value=0.1, max_value=1e6, allow_nan=False),
        st.sampled_from([200.0, 266.0, 333.0, 400.0, 466.0, 533.0]),
    )
    def test_ceiling_property(self, ns, freq):
        cycles = units.ns_to_cycles(ns, freq)
        period = units.clock_period_ns(freq)
        # Enough cycles to cover the duration...
        assert cycles * period >= ns - 1e-6
        # ...but not a whole extra cycle too many.
        assert (cycles - 1) * period < ns + 1e-6

    def test_cycles_to_ns_inverse(self):
        assert units.cycles_to_ns(3, 200.0) == pytest.approx(15.0)


class TestFrameRate:
    def test_30fps_period(self):
        assert units.frame_period_ms(30) == pytest.approx(33.333, abs=1e-3)

    def test_60fps_period(self):
        assert units.frame_period_ms(60) == pytest.approx(16.667, abs=1e-3)

    def test_rejects_nonpositive_fps(self):
        with pytest.raises(ValueError):
            units.frame_period_ms(0)

    def test_per_frame_to_per_second(self):
        assert units.per_frame_to_per_second(100.0, 30) == pytest.approx(3000.0)


class TestPower:
    def test_watts_milliwatts_round_trip(self):
        assert units.milliwatts_to_watts(units.watts_to_milliwatts(1.234)) == (
            pytest.approx(1.234)
        )
