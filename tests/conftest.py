"""Shared fixtures for the test suite.

Fixtures favour small, fast workloads; the paper-scale reproduction
checks live in ``tests/analysis/test_experiments.py`` and use reduced
chunk budgets so the whole suite stays quick.
"""

from __future__ import annotations

import pytest

from repro.backends import set_default_backend
from repro.controller.interconnect import InterconnectModel
from repro.core.config import SystemConfig
from repro.dram.datasheet import NEXT_GEN_MOBILE_DDR, next_gen_mobile_ddr
from repro.usecase.levels import level_by_name
from repro.usecase.pipeline import VideoRecordingUseCase


def pytest_addoption(parser):
    parser.addoption(
        "--backend",
        action="store",
        default=None,
        metavar="NAME",
        help=(
            "Run the suite with NAME as the default simulation backend "
            "(reference, fast, analytic, batch, or any registered name). "
            "Every "
            "SystemConfig built without an explicit backend= picks it up; "
            "the CI backend matrix drives the smoke subset through this."
        ),
    )


def pytest_configure(config):
    backend = config.getoption("--backend")
    if backend:
        set_default_backend(backend)


@pytest.fixture
def device():
    """The calibrated next-generation mobile DDR descriptor."""
    return NEXT_GEN_MOBILE_DDR


@pytest.fixture
def fresh_device():
    """A newly built descriptor (for mutation-free comparisons)."""
    return next_gen_mobile_ddr()


@pytest.fixture
def ideal_interconnect():
    """Zero-overhead interconnect: exposes pure DRAM timing."""
    return InterconnectModel(address_cycles_per_access=0.0)


@pytest.fixture
def config_1ch():
    """Single channel at the paper's 400 MHz design point."""
    return SystemConfig(channels=1, freq_mhz=400.0)


@pytest.fixture
def config_4ch():
    """Four channels at 400 MHz (the paper's 1080p30 answer)."""
    return SystemConfig(channels=4, freq_mhz=400.0)


@pytest.fixture
def level_720p30():
    """H.264 level 3.1: 720p at 30 fps."""
    return level_by_name("3.1")


@pytest.fixture
def level_1080p30():
    """H.264 level 4: 1080p at 30 fps."""
    return level_by_name("4")


@pytest.fixture
def use_case_720p30(level_720p30):
    """The full recording use case at 720p30."""
    return VideoRecordingUseCase(level_720p30)
