"""Tests for the metamorphic invariant checks."""

from dataclasses import replace

from repro.regression import (
    check_case_invariants,
    check_channel_monotonicity,
    check_frequency_monotonicity,
    check_prefix_consistency,
    generate_case,
    generate_cases,
)
from repro.regression.invariants import (
    CONTIGUOUS_KINDS,
    MAX_CHECK_CHANNELS,
    MAX_CHECK_FREQ_MHZ,
    InvariantViolation,
)


class TestDomainGates:
    def test_channel_check_skips_non_contiguous_kinds(self):
        # Strided/random traffic can alias onto a channel subset where
        # doubling genuinely does not help -- out of the invariant's
        # domain, so the check must skip, not fail.
        case = next(
            c for c in generate_cases(0, 40) if c.kind not in CONTIGUOUS_KINDS
        )
        assert check_channel_monotonicity(case) == []

    def test_channel_check_skips_at_channel_ceiling(self):
        case = next(c for c in generate_cases(0, 40) if c.kind == "sequential")
        wide = replace(
            case, config=case.config.with_channels(MAX_CHECK_CHANNELS)
        )
        assert check_channel_monotonicity(wide) == []

    def test_frequency_check_skips_above_device_range(self):
        case = generate_case(0, 0)
        fast_clock = replace(
            case, config=case.config.with_frequency(MAX_CHECK_FREQ_MHZ)
        )
        assert check_frequency_monotonicity(fast_clock) == []

    def test_prefix_check_skips_single_transaction(self):
        case = generate_case(0, 0)
        single = replace(case, transactions=case.transactions[:1])
        assert check_prefix_consistency(single) == []


class TestInvariantsHold:
    def test_generated_cases_satisfy_all_invariants(self):
        # The real engine must satisfy its own physics on a seeded
        # sample; the full campaign runs under ``repro-sim fuzz``.
        for case in generate_cases(13, 6):
            violations = check_case_invariants(case)
            assert violations == [], "\n".join(
                v.describe() for v in violations
            )


class TestViolationReporting:
    def test_describe_names_invariant_and_repro(self):
        case = generate_case(0, 0)
        violation = InvariantViolation(
            invariant="channel monotonicity",
            case=case,
            detail="2 -> 4 channels slowed the run: 10.0 ns -> 20.0 ns",
            repro=case.repro(),
        )
        text = violation.describe()
        assert "channel monotonicity" in text
        assert "slowed the run" in text
        assert "repro: channels=" in text
