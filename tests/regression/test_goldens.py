"""Tests for the golden-baseline store and comparator."""

import json

import pytest

from repro.errors import RegressionError
from repro.regression import (
    GOLDEN_ARTIFACTS,
    GOLDEN_CHUNK_BUDGET,
    GOLDEN_SCHEMA,
    PACKAGED_GOLDENS_DIR,
    Tolerance,
    capture_goldens,
    compare_grid,
    compare_table1,
    golden_path,
    load_golden,
    load_goldens,
    verify_paper,
    write_goldens,
)
from repro.telemetry import Telemetry

from pathlib import Path

FIXTURES = Path(__file__).parent / "fixtures"


class TestTolerance:
    def test_exact_match_allowed(self):
        assert Tolerance(0.0, 0.0).allows(1.5, 1.5)

    def test_within_absolute(self):
        assert Tolerance(0.1, 0.0).allows(1.0, 1.05)
        assert not Tolerance(0.1, 0.0).allows(1.0, 1.2)

    def test_within_relative(self):
        assert Tolerance(0.0, 0.1).allows(100.0, 109.0)
        assert not Tolerance(0.0, 0.1).allows(100.0, 111.0)

    def test_non_finite_never_within(self):
        # A NaN measurement must fail the comparison, not slide through
        # because NaN != anything is False.
        tol = Tolerance(1e9, 1e9)
        assert not tol.allows(1.0, float("nan"))
        assert not tol.allows(float("nan"), 1.0)
        assert not tol.allows(1.0, float("inf"))

    def test_widened_adds_relative(self):
        tol = Tolerance(0.0, 0.01).widened(0.15)
        assert tol.rel_tol == pytest.approx(0.16)
        assert tol.abs_tol == 0.0


class TestStore:
    def test_committed_goldens_load(self):
        goldens = load_goldens()
        assert set(goldens) == set(GOLDEN_ARTIFACTS)
        for name, payload in goldens.items():
            assert payload["schema"] == GOLDEN_SCHEMA
            assert payload["artifact"] == name

    def test_committed_provenance_is_reproducible(self):
        # Timestamp- and host-free by design: regeneration on an
        # unchanged tree must be a byte-identical no-op.
        for name in GOLDEN_ARTIFACTS:
            prov = load_golden(name)["provenance"]
            assert prov["chunk_budget"] == GOLDEN_CHUNK_BUDGET
            assert "verify-paper --update" in prov["command"]
            assert not any("time" in key or "host" in key for key in prov)

    def test_unknown_artifact_rejected(self):
        with pytest.raises(RegressionError, match="unknown golden artifact"):
            golden_path("fig9")

    def test_missing_file_names_recovery_command(self, tmp_path):
        with pytest.raises(RegressionError, match="--update"):
            load_golden("table1", tmp_path)

    def test_unparseable_file_rejected(self, tmp_path):
        (tmp_path / "table1.json").write_text("{not json")
        with pytest.raises(RegressionError, match="unreadable"):
            load_golden("table1", tmp_path)

    def test_wrong_schema_rejected(self, tmp_path):
        (tmp_path / "table1.json").write_text(
            json.dumps({"schema": "other/9", "artifact": "table1"})
        )
        with pytest.raises(RegressionError, match="schema"):
            load_golden("table1", tmp_path)

    def test_wrong_artifact_tag_rejected(self, tmp_path):
        (tmp_path / "table1.json").write_text(
            json.dumps({"schema": GOLDEN_SCHEMA, "artifact": "fig3"})
        )
        with pytest.raises(RegressionError, match="claims artifact"):
            load_golden("table1", tmp_path)

    def test_write_is_deterministic(self, tmp_path):
        goldens = load_goldens()
        write_goldens(goldens, tmp_path / "a")
        write_goldens(goldens, tmp_path / "b")
        for name in GOLDEN_ARTIFACTS:
            a = (tmp_path / "a" / f"{name}.json").read_bytes()
            b = (tmp_path / "b" / f"{name}.json").read_bytes()
            assert a == b

    def test_write_round_trips_committed_bytes(self, tmp_path):
        # Loading the committed files and re-serialising them must
        # reproduce the committed bytes: proves the on-disk formatting
        # (sorted keys, indent, trailing newline) matches the writer.
        write_goldens(load_goldens(), tmp_path)
        for name in GOLDEN_ARTIFACTS:
            committed = (PACKAGED_GOLDENS_DIR / f"{name}.json").read_bytes()
            rewritten = (tmp_path / f"{name}.json").read_bytes()
            assert rewritten == committed


GRID_GOLDEN = {
    "schema": GOLDEN_SCHEMA,
    "artifact": "fig3",
    "tolerances": {"access_ms": {"abs": 0.0, "rel": 0.01}},
    "points": [
        {"freq_mhz": 200.0, "channels": 1, "access_ms": 40.0, "verdict": "fail"},
        {"freq_mhz": 400.0, "channels": 2, "access_ms": 10.0, "verdict": "pass"},
    ],
}


class TestCompareGrid:
    def compare(self, records, **kwargs):
        return compare_grid(
            "fig3",
            GRID_GOLDEN,
            records,
            ("freq_mhz", "channels"),
            ("access_ms",),
            **kwargs,
        )

    def test_identical_records_pass(self):
        comparison = self.compare(GRID_GOLDEN["points"])
        assert comparison.passed
        assert len(comparison.diffs) == 4  # 2 metrics + 2 verdicts

    def test_breach_reports_cell_values_and_tolerance(self):
        records = [dict(GRID_GOLDEN["points"][0]), dict(GRID_GOLDEN["points"][1])]
        records[0]["access_ms"] = 41.0  # 2.5% off a 1% tolerance
        comparison = self.compare(records)
        assert not comparison.passed
        (bad,) = comparison.mismatches
        assert bad.cell == "freq_mhz=200.0,channels=1"
        assert bad.metric == "access_ms"
        assert bad.expected == 40.0 and bad.actual == 41.0
        assert "rel=0.01" in bad.detail
        assert "MISMATCH" in bad.describe()

    def test_within_tolerance_passes(self):
        records = [dict(GRID_GOLDEN["points"][0]), dict(GRID_GOLDEN["points"][1])]
        records[0]["access_ms"] = 40.2  # 0.5% inside the 1% band
        assert self.compare(records).passed

    def test_missing_cell_reported(self):
        comparison = self.compare(GRID_GOLDEN["points"][:1])
        assert any(
            d.metric == "presence" and d.actual == "missing"
            for d in comparison.mismatches
        )

    def test_unexpected_cell_reported(self):
        extra = dict(GRID_GOLDEN["points"][0], freq_mhz=999.0)
        comparison = self.compare(list(GRID_GOLDEN["points"]) + [extra])
        assert any(
            d.actual == "unexpected" and "999" in d.cell
            for d in comparison.mismatches
        )

    def test_verdict_flip_caught_only_when_checked(self):
        records = [dict(GRID_GOLDEN["points"][0]), dict(GRID_GOLDEN["points"][1])]
        records[0]["verdict"] = "marginal"
        assert not self.compare(records).passed
        assert self.compare(records, check_verdicts=False).passed

    def test_extra_rel_widens_every_metric(self):
        records = [dict(GRID_GOLDEN["points"][0]), dict(GRID_GOLDEN["points"][1])]
        records[0]["access_ms"] = 44.0  # 10% off
        assert not self.compare(records).passed
        assert self.compare(records, extra_rel=0.15, check_verdicts=False).passed


class TestBrokenFixture:
    """A deliberately-broken committed golden must be caught loudly."""

    def test_broken_golden_fails_with_per_cell_diffs(self):
        from repro.analysis.experiments import run_table1

        golden = load_golden("table1", FIXTURES / "broken")
        comparison = compare_table1(golden, run_table1())
        assert not comparison.passed
        cells = {d.cell for d in comparison.mismatches}
        # The perturbed bandwidth cell and the fabricated level are
        # both localised by name.
        assert "level=3.1" in cells
        assert "level=9.9" in cells
        report = comparison.format()
        assert "level=3.1" in report and "1999" in report


class TestCaptureAndVerify:
    def test_capture_refuses_screening_backend(self):
        with pytest.raises(RegressionError, match="bit-identical"):
            capture_goldens(backend="analytic")

    def test_capture_verify_round_trip_small_budget(self, tmp_path):
        payloads = capture_goldens(chunk_budget=3_000)
        write_goldens(payloads, tmp_path)
        verification = verify_paper(directory=tmp_path)
        assert verification.passed
        assert verification.chunk_budget == 3_000
        assert verification.cells_checked > 100

    def test_verify_against_committed_goldens_with_telemetry(self):
        telemetry = Telemetry.enabled()
        verification = verify_paper(telemetry=telemetry)
        assert verification.passed, verification.format()
        assert verification.backend == "reference"
        counters = telemetry.registry.as_dict()["counters"]
        assert counters["regression.cases"] == verification.cells_checked
        assert counters["regression.mismatches"] == 0
        assert verification.format().endswith(
            f"PASS: {verification.cells_checked}/"
            f"{verification.cells_checked} cells within tolerance"
        )
