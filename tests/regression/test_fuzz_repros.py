"""Repro strings surfaced by ``repro-sim fuzz`` campaigns, pinned.

Each case here came out of a real fuzz campaign (seed and case number
noted inline).  The test replays the shrunk one-line repro and asserts
the *diagnosed* behaviour, so a regression flips the test rather than
waiting for the next campaign to stumble over the same seed.
"""

from repro.regression.fuzzer import compare_case, parse_repro
from repro.regression.invariants import (
    CONTIGUOUS_KINDS,
    check_channel_monotonicity,
)
from repro.core.system import MultiChannelMemorySystem

# Fuzz seed 5, case 302 (2026-08): alternating R/W over two distant
# regions.  Doubling 2ch -> 4ch halves the per-channel chunk index,
# shifting which address bits select the bank; the read region (base
# 0x0) and write region (base 0x2000000) that pipelined across banks
# 0/1 at 2ch both land in bank 0 at 4ch and row-thrash (35 conflicts
# per channel, 1879.8 ns -> 2188.8 ns).  Correct model physics -- the
# bug was the channel-monotonicity invariant claiming alternating
# traffic for its domain.
ALTERNATING_BANK_ALIAS = (
    "channels=2 freq=466 map=brc page=open pd=immediate | "
    + ";".join(
        f"R 0x{i * 0x100:x} 256 0.0;W 0x{0x2000000 + i * 0x100:x} 256 0.0"
        for i in range(18)
    )
)


def _run(case, channels):
    config = case.config.with_channels(channels).with_backend("reference")
    return MultiChannelMemorySystem(config).run(list(case.transactions))


class TestAlternatingBankAlias:
    def test_alternating_is_outside_monotonicity_domain(self):
        case = parse_repro(ALTERNATING_BANK_ALIAS)
        assert case.kind not in CONTIGUOUS_KINDS or case.kind == "replay"
        assert check_channel_monotonicity(case) == []

    def test_slowdown_is_bank_serialisation_not_a_timing_bug(self):
        # The diagnosed mechanism must stay observable: 2ch spreads the
        # two regions across banks conflict-free, 4ch aliases them onto
        # one bank and pays row conflicts for the entire slowdown.
        case = parse_repro(ALTERNATING_BANK_ALIAS)
        base = _run(case, 2)
        doubled = _run(case, 4)
        assert all(ch.bank_conflicts == 0 for ch in base.channels)
        assert all(ch.bank_conflicts > 0 for ch in doubled.channels)
        for ch in doubled.channels:
            busy_banks = [n for n in ch.bank_accesses if n > 0]
            assert len(busy_banks) == 1
        assert doubled.sample_access_time_ns > base.sample_access_time_ns

    def test_batch_backend_stays_bit_identical_on_repro(self):
        # The case came out of a batch-vs-reference campaign; parity
        # must hold on it regardless of the invariant-domain fix.
        import importlib.util
        from dataclasses import replace

        import pytest

        if importlib.util.find_spec("numpy") is None:
            pytest.skip("batch backend needs numpy")
        for channels in (2, 4):
            case = parse_repro(ALTERNATING_BANK_ALIAS)
            case = replace(case, config=case.config.with_channels(channels))
            mismatches = compare_case(case, "batch")
            assert mismatches == [], "\n".join(m.describe() for m in mismatches)


class TestWorkloadCampaignStaysClean:
    """Campaign record, 2026-08 (workload zoo landed): seeds 1/5/17 x
    300 cases each -- which include the ``workload`` traffic kind
    replaying scaled-down zoo frames -- ran clean across fast,
    analytic and batch vs the reference (639/644/637 differential
    checks, zero mismatches, zero invariant violations).  No repro to
    pin; this guard replays the workload-kind cases of one pinned
    seed-window under the always-available bit-identical backend so a
    zoo or load-model regression surfaces here first."""

    def test_workload_cases_of_seed_5_stay_clean(self):
        from repro.regression.fuzzer import generate_case

        checked = 0
        for index in range(60):
            case = generate_case(seed=5, index=index)
            if case.kind != "workload":
                continue
            checked += 1
            mismatches = compare_case(case, "fast")
            assert mismatches == [], (case.describe(), mismatches)
        assert checked >= 5  # the kind is actually being sampled
