"""Tests for the differential fuzzer: determinism, repro strings,
shrinking against a deliberately-wrong backend, campaign reporting."""

from dataclasses import replace

import pytest

from repro.backends.base import ChannelBackend, ChannelSimulator
from repro.backends.registry import register_backend, unregister_backend
from repro.controller.request import MasterTransaction, Op
from repro.errors import RegressionError
from repro.regression import (
    FuzzCase,
    compare_case,
    generate_case,
    generate_cases,
    parse_repro,
    run_fuzz,
    run_repro,
    shrink_case,
)
from repro.regression.fuzzer import TRAFFIC_KINDS
from repro.telemetry import Telemetry


class TestDeterminism:
    def test_same_seed_same_cases(self):
        # The whole design rests on this: a campaign is identified by
        # (seed, count) alone -- no wall clock, no hash randomisation.
        assert generate_cases(7, 12) == generate_cases(7, 12)

    def test_case_independent_of_count(self):
        # Case i of a campaign does not depend on how many cases were
        # requested, so a failure from a 1000-case run replays as
        # generate_case(seed, i) directly.
        assert generate_cases(7, 12)[3] == generate_case(7, 3)

    def test_different_seeds_differ(self):
        assert generate_cases(1, 8) != generate_cases(2, 8)

    def test_campaign_samples_the_space(self):
        cases = generate_cases(0, 60)
        assert len({c.config.channels for c in cases}) >= 4
        assert len({c.config.freq_mhz for c in cases}) >= 5
        assert {c.kind for c in cases} == {kind for kind, _ in TRAFFIC_KINDS}
        assert any(c.streaming for c in cases)
        assert any(not c.streaming for c in cases)

    def test_rejects_empty_campaign(self):
        with pytest.raises(RegressionError, match="count"):
            generate_cases(0, 0)


class TestReproStrings:
    def test_round_trip(self):
        for case in generate_cases(11, 10):
            back = parse_repro(case.repro())
            assert back.config == case.config
            assert back.transactions == case.transactions

    def test_round_trip_preserves_float_arrivals(self):
        case = generate_case(5, 0)
        txns = tuple(
            replace(t, arrival_ns=1670.5952745453149) for t in case.transactions
        )
        case = replace(case, transactions=txns)
        assert parse_repro(case.repro()).transactions == txns

    def test_malformed_string_rejected(self):
        with pytest.raises(RegressionError, match="malformed"):
            parse_repro("channels=2 | R nope 16")
        with pytest.raises(RegressionError, match="malformed"):
            parse_repro("no pipe at all")

    def test_empty_transaction_list_rejected(self):
        with pytest.raises(RegressionError, match="no transactions"):
            parse_repro("channels=2 freq=400 map=rbc page=open pd=never | ")

    def test_unknown_power_down_rejected(self):
        spec = generate_case(5, 0).repro().replace(
            f"pd={generate_case(5, 0).config.power_down.name}", "pd=sometimes"
        )
        with pytest.raises(RegressionError, match="power-down"):
            parse_repro(spec)


class _OffByOneSimulator(ChannelSimulator):
    """Reference simulator with the finish cycle nudged: the smallest
    possible lie a backend can tell, which bit-identity must catch."""

    def __init__(self, inner):
        self._inner = inner

    def run(self, runs, command_log=None):
        result = self._inner.run(runs, command_log)
        return replace(result, finish_cycle=result.finish_cycle + 1)


class _OffByOneBackend(ChannelBackend):
    name = "test-off-by-one"
    supports_command_log = True
    description = "reference plus one cycle (deliberately wrong)"
    reference_tolerance = 0.0

    def create(self, config, index=0):
        from repro.backends.registry import get_backend

        return _OffByOneSimulator(
            get_backend("reference").create(config, index)
        )


@pytest.fixture
def off_by_one_backend():
    register_backend(_OffByOneBackend())
    try:
        yield "test-off-by-one"
    finally:
        unregister_backend("test-off-by-one")


class TestDifferentialChecks:
    def test_fast_backend_agrees(self):
        for case in generate_cases(3, 5):
            assert compare_case(case, "fast") == []

    def test_off_by_one_backend_caught(self, off_by_one_backend):
        case = generate_case(3, 0)
        problems = compare_case(case, off_by_one_backend)
        assert problems
        assert any("finish_cycle" in p for p in problems)

    def test_screening_backend_counters_must_match(self, off_by_one_backend):
        # A screening (tolerance) backend still may not move different
        # data: only its *timing* is approximate.
        class WrongTraffic(_OffByOneBackend):
            name = "test-wrong-traffic"
            reference_tolerance = 0.5

            def create(self, config, index=0):
                from repro.backends.registry import get_backend
                from repro.dram.commands import CommandCounters

                inner = get_backend("reference").create(config, index)

                class Sim(ChannelSimulator):
                    def run(self, runs, command_log=None):
                        result = inner.run(runs, command_log)
                        counters = result.counters
                        return replace(
                            result,
                            counters=CommandCounters(
                                **{
                                    **counters.as_dict(),
                                    "reads": counters.reads + 1,
                                }
                            ),
                        )

                return Sim()

        register_backend(WrongTraffic())
        try:
            problems = compare_case(generate_case(3, 0), "test-wrong-traffic")
            assert any("data movement" in p for p in problems)
        finally:
            unregister_backend("test-wrong-traffic")


class TestShrinking:
    def test_shrinks_to_single_transaction(self, off_by_one_backend):
        # The off-by-one lie fails on *every* input, so the minimal
        # still-failing case is one transaction.
        case = generate_case(9, 1)
        assert len(case.transactions) > 1
        minimal = shrink_case(
            case, lambda c: bool(compare_case(c, off_by_one_backend))
        )
        assert len(minimal.transactions) == 1
        assert compare_case(minimal, off_by_one_backend)

    def test_shrink_halves_sizes(self):
        case = replace(
            generate_case(9, 1),
            transactions=(MasterTransaction(Op.READ, 0, 4096),),
        )
        minimal = shrink_case(case, lambda c: True)
        assert len(minimal.transactions) == 1
        assert minimal.transactions[0].size == 16

    def test_shrink_keeps_failure_alive(self):
        # A predicate that only fails on streams with >= 3 txns must
        # not be shrunk below 3.
        case = generate_case(4, 2)
        if len(case.transactions) < 4:
            case = replace(case, transactions=case.transactions * 4)
        minimal = shrink_case(case, lambda c: len(c.transactions) >= 3)
        assert len(minimal.transactions) == 3


class TestCampaign:
    def test_clean_tree_campaign_passes(self):
        import importlib.util

        telemetry = Telemetry.enabled()
        report = run_fuzz(cases=10, seed=1, telemetry=telemetry)
        assert report.passed, report.format()
        assert report.cases == 10
        # Every (case, default backend) pair is either checked or
        # screening-skipped; batch joins the default set with numpy.
        defaults = 2 + (importlib.util.find_spec("numpy") is not None)
        assert report.checks + report.skipped_screening == 10 * defaults
        counters = telemetry.registry.as_dict()["counters"]
        assert counters["regression.cases"] == 10
        assert counters["regression.mismatches"] == 0
        assert report.format().endswith("PASS")

    def test_campaign_finds_and_shrinks_wrong_backend(self, off_by_one_backend):
        telemetry = Telemetry.enabled()
        report = run_fuzz(
            cases=3,
            seed=2,
            backends=[off_by_one_backend],
            check_invariants=False,
            telemetry=telemetry,
        )
        assert not report.passed
        assert len(report.mismatches) == 3
        for mismatch in report.mismatches:
            assert mismatch.backend == off_by_one_backend
            assert len(mismatch.case.transactions) == 1  # shrunk
            # The repro string replays to the same failure.
            assert run_repro(mismatch.repro, off_by_one_backend)
            assert "repro:" in mismatch.describe()
        assert telemetry.registry.as_dict()["counters"][
            "regression.mismatches"
        ] == 3
        assert report.format().endswith("FAIL")

    def test_repro_of_fixed_bug_comes_back_clean(self):
        # Replaying a repro string against a correct backend returns no
        # discrepancies -- the workflow for confirming a fix.
        case = generate_case(6, 0)
        assert run_repro(case.repro(), "fast") == []

    def test_no_shrink_keeps_original_case(self, off_by_one_backend):
        report = run_fuzz(
            cases=1,
            seed=2,
            backends=[off_by_one_backend],
            check_invariants=False,
            shrink=False,
        )
        (mismatch,) = report.mismatches
        assert mismatch.case == generate_case(2, 0)
