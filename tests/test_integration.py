"""Cross-subsystem integration scenarios.

Each test exercises several packages together the way a downstream
user would, beyond what the per-module suites cover.
"""

import dataclasses

import pytest

from repro import (
    ChannelCluster,
    ClusteredMemorySystem,
    MultiChannelMemorySystem,
    SystemConfig,
    VideoRecordingLoadModel,
    VideoRecordingUseCase,
    level_by_name,
    pace_transactions,
    read_trace,
    write_trace,
)
from repro.analysis.validate import validate_configuration
from repro.controller.mapping import AddressMultiplexing
from repro.load.mixer import interleave_backlogged, streams_overlap
from repro.load.generators import sequential_stream
from repro.power.report import compute_frame_power

SCALE = 1 / 64


def frame_txns(level_name="3.1", scale=SCALE, base=0):
    load = VideoRecordingLoadModel(
        VideoRecordingUseCase(level_by_name(level_name)), base_address=base
    )
    return load.generate_frame(scale=scale)


class TestTraceDrivenPipeline:
    def test_trace_file_round_trip_preserves_simulation(self, tmp_path):
        """Generating traffic, persisting it, replaying it from disk
        and simulating must give bit-identical results."""
        txns = frame_txns()
        path = tmp_path / "frame.trace"
        write_trace(path, txns)
        system = MultiChannelMemorySystem(SystemConfig(channels=4))
        direct = system.run(txns, scale=SCALE)
        replayed = system.run(read_trace(path), scale=SCALE)
        assert direct.access_time_ns == replayed.access_time_ns
        assert direct.merged_counters().as_dict() == (
            replayed.merged_counters().as_dict()
        )

    def test_paced_trace_round_trip(self, tmp_path):
        """Arrival times survive the trace format."""
        paced = pace_transactions(frame_txns(), frame_period_ms=33.333 * SCALE)
        path = tmp_path / "paced.trace"
        write_trace(path, paced)
        back = read_trace(path)
        assert [t.arrival_ns for t in back] == [t.arrival_ns for t in paced]


class TestMixedMastersVsClusters:
    def test_clustering_beats_merging_for_isolation(self):
        """The paper's Section V argument end-to-end: a merged
        monolithic memory couples the masters; clusters do not."""
        video = frame_txns()
        ui_base = 512 * 2**20  # disjoint region
        ui = sequential_stream(int(8 * 2**20 * SCALE), block_bytes=4096,
                               base_address=ui_base)
        assert not streams_overlap([video, ui])

        merged = interleave_backlogged([video, ui])
        mono = MultiChannelMemorySystem(SystemConfig(channels=8))
        mono_time = mono.run(merged, scale=SCALE).access_time_ms

        clusters = ClusteredMemorySystem(
            [
                ChannelCluster("video", SystemConfig(channels=4)),
                ChannelCluster("ui", SystemConfig(channels=4)),
            ]
        )
        # Rebase the UI stream into the UI cluster's own address space.
        ui_local = [dataclasses.replace(t, address=t.address - ui_base) for t in ui]
        results = clusters.run({"video": video, "ui": ui_local}, scale=SCALE)
        ui_alone = clusters.run({"ui": ui_local}, scale=SCALE)["ui"]
        # Isolation: identical latency with and without the video load.
        assert results["ui"].access_time_ms == ui_alone.access_time_ms
        # Both organisations complete; the monolithic one serialises
        # the masters over more channels.
        assert mono_time > 0
        assert results["video"].access_time_ms > 0

    def test_merged_stream_is_protocol_clean(self):
        video = frame_txns()
        ui = sequential_stream(2**20 // 64, block_bytes=4096,
                               base_address=512 * 2**20)
        merged = interleave_backlogged([video, ui])
        system = MultiChannelMemorySystem(SystemConfig(channels=2))
        logs = []
        system.run(merged, scale=SCALE, command_logs=logs)
        assert system.audit(logs) == []


class TestCrossDeviceConsistency:
    def test_same_timing_same_access_time_different_power(self):
        """STANDARD_DDR2 shares the next-gen part's timing, so access
        times match exactly while power differs -- a strong internal
        consistency check across the device/power layers."""
        from repro.dram.datasheet import NEXT_GEN_MOBILE_DDR, STANDARD_DDR2

        txns = frame_txns()
        results = {}
        for device in (NEXT_GEN_MOBILE_DDR, STANDARD_DDR2):
            config = SystemConfig(channels=2, freq_mhz=400.0, device=device)
            result = MultiChannelMemorySystem(config).run(txns, scale=SCALE)
            power = compute_frame_power(config, result, 33.333)
            results[device.name] = (result.access_time_ns, power.total_power_w)
        (t_ng, p_ng) = results[NEXT_GEN_MOBILE_DDR.name]
        (t_std, p_std) = results[STANDARD_DDR2.name]
        assert t_ng == t_std
        assert p_std > 1.5 * p_ng


class TestEndToEndValidation:
    @pytest.mark.parametrize(
        "scheme", list(AddressMultiplexing), ids=lambda s: s.value
    )
    def test_1080p_validates_under_every_mapping(self, scheme):
        config = dataclasses.replace(
            SystemConfig(channels=4, freq_mhz=400.0), multiplexing=scheme
        )
        summary = validate_configuration(
            level_by_name("4"), config, chunk_budget=40_000
        )
        assert summary.all_passed, summary.failures()

    def test_paced_run_validates_protocol(self):
        paced = pace_transactions(frame_txns(), frame_period_ms=33.333 * SCALE)
        system = MultiChannelMemorySystem(SystemConfig(channels=4))
        logs = []
        result = system.run(paced, scale=SCALE, command_logs=logs)
        assert system.audit(logs) == []
        # The paced stream powered down mid-frame and stayed legal.
        assert result.merged_counters().power_down_entries > 0
