"""End-to-end tests for :class:`repro.oracle.api.FeasibilityOracle`."""

import pytest

from repro.analysis.sweep import sweep_use_case
from repro.core.config import SystemConfig
from repro.errors import ConfigurationError
from repro.oracle import FeasibilityOracle
from repro.regression.fuzzer import _diff_exact
from repro.service.cache import ResultCache
from repro.telemetry import Telemetry
from repro.usecase.levels import level_by_name

LEVEL = level_by_name("3.1")
SCALE = 1 / 256
GRID_FREQS = (200.0, 266.0, 333.0, 400.0)


def _warm_cache(directory, channels=(1, 2), backend="fast", workload=None):
    cache = ResultCache(directory)
    configs = [
        SystemConfig(channels=m, freq_mhz=f)
        for m in channels
        for f in GRID_FREQS
    ]
    sweep_use_case(
        [LEVEL], configs, scale=SCALE, cache=cache, backend=backend,
        workload=workload,
    )
    return cache


@pytest.fixture
def warm_oracle(tmp_path):
    cache = _warm_cache(tmp_path / "cache")
    return FeasibilityOracle(cache=cache, scale=SCALE)


class TestHarvest:
    def test_warm_counts_grid_points(self, warm_oracle):
        assert warm_oracle.warm(LEVEL) == 2 * len(GRID_FREQS)

    def test_cold_store_harvests_nothing(self, tmp_path):
        oracle = FeasibilityOracle(cache=tmp_path / "empty", scale=SCALE)
        assert oracle.warm(LEVEL) == 0

    def test_mismatched_scale_harvests_nothing(self, tmp_path):
        # scale is part of the canonical key: points computed under a
        # different simulation context must not seed the surface.
        cache = _warm_cache(tmp_path / "cache")
        oracle = FeasibilityOracle(cache=cache, scale=SCALE / 2)
        assert oracle.warm(LEVEL) == 0

    def test_workload_keying_separates_surfaces(self, tmp_path):
        # A cache warmed only under vvc_encoder must not answer
        # default-workload queries (canonical keys carry workload
        # identity), and vice versa the vvc surface must be warm.
        cache = _warm_cache(tmp_path / "cache", workload="vvc_encoder")
        oracle = FeasibilityOracle(cache=cache, scale=SCALE)
        assert oracle.warm(LEVEL) == 0
        assert oracle.warm(LEVEL, workload="vvc_encoder") == 2 * len(GRID_FREQS)

    def test_checkpoint_is_a_harvest_source(self, tmp_path):
        checkpoint = tmp_path / "sweep.ckpt"
        sweep_use_case(
            [LEVEL],
            [SystemConfig(channels=2, freq_mhz=f) for f in GRID_FREQS],
            scale=SCALE,
            checkpoint=checkpoint,
            backend="fast",
        )
        oracle = FeasibilityOracle(checkpoints=[checkpoint], scale=SCALE)
        assert oracle.warm(LEVEL) == len(GRID_FREQS)


class TestQueryTiers:
    def test_grid_hit_answers_exact_from_surface(self, warm_oracle):
        answer = warm_oracle.query(LEVEL, 2, 266.0)
        assert answer.tier == "exact"
        assert answer.error_bound == 0.0
        assert answer.access_low_ms == answer.access_time_ms == answer.access_high_ms
        assert answer.verdict_certain
        assert answer.escalations == 0
        assert answer.latency_s >= 0.0

    def test_exact_tier_is_bit_identical_to_sweep(self, warm_oracle):
        answer = warm_oracle.query(LEVEL, 2, 266.0, accuracy=0.0)
        fresh = sweep_use_case(
            [LEVEL],
            [SystemConfig(channels=2, freq_mhz=266.0)],
            scale=SCALE,
            backend="fast",
        )[0]
        assert _diff_exact(answer.point.result, fresh.result) == []
        assert answer.access_time_ms == fresh.access_time_ms
        assert answer.total_power_mw == fresh.total_power_mw
        assert answer.verdict is fresh.verdict

    def test_offgrid_interpolates_on_surrogate_tier(self, warm_oracle):
        answer = warm_oracle.query(LEVEL, 2, 300.0, accuracy=0.5)
        assert answer.tier == "surrogate"
        assert answer.point is None
        # Never masquerades as exact: positive bound, real interval.
        assert answer.error_bound > 0.0
        assert answer.access_low_ms < answer.access_high_ms
        assert (
            answer.access_low_ms <= answer.access_time_ms <= answer.access_high_ms
        )

    def test_surrogate_interval_brackets_the_truth(self, warm_oracle):
        answer = warm_oracle.query(LEVEL, 2, 300.0, accuracy=0.5)
        truth = sweep_use_case(
            [LEVEL],
            [SystemConfig(channels=2, freq_mhz=300.0)],
            scale=SCALE,
            backend="fast",
        )[0]
        assert answer.access_low_ms <= truth.access_time_ms <= answer.access_high_ms

    def test_tight_accuracy_escalates_past_surrogate(self, warm_oracle):
        answer = warm_oracle.query(LEVEL, 2, 300.0, accuracy=0.001)
        assert answer.tier == "exact"
        assert answer.error_bound == 0.0
        assert answer.escalations == 2

    def test_cold_cache_screens_on_analytic(self, tmp_path):
        oracle = FeasibilityOracle(cache=tmp_path / "cache", scale=SCALE)
        answer = oracle.query(LEVEL, 4, 300.0, accuracy=0.5)
        assert answer.tier == "analytic"
        assert answer.error_bound == pytest.approx(0.15)
        assert answer.escalations == 0
        assert answer.access_low_ms < answer.access_time_ms < answer.access_high_ms

    def test_cold_cache_degrades_analytic_then_exact(self, tmp_path):
        oracle = FeasibilityOracle(cache=tmp_path / "cache", scale=SCALE)
        screening = oracle.query(LEVEL, 2, 300.0, accuracy=0.5)
        exact = oracle.query(LEVEL, 2, 300.0, accuracy=0.0)
        assert screening.tier == "analytic"
        assert exact.tier == "exact"
        # The analytic estimate is within its tolerance of the truth.
        assert screening.access_low_ms <= exact.access_time_ms
        assert exact.access_time_ms <= screening.access_high_ms

    def test_exact_answers_fold_back_into_cache_and_surface(self, tmp_path):
        cache_dir = tmp_path / "cache"
        oracle = FeasibilityOracle(cache=cache_dir, scale=SCALE)
        first = oracle.query(LEVEL, 2, 400.0, accuracy=0.0)
        assert first.escalations == 1  # no surface data -> analytic rejected
        # Same oracle: the computed point now sits on the surface.
        second = oracle.query(LEVEL, 2, 400.0, accuracy=0.0)
        assert second.escalations == 0
        assert second.access_time_ms == first.access_time_ms
        # Fresh oracle over the same cache: harvested from disk.
        rebuilt = FeasibilityOracle(cache=cache_dir, scale=SCALE)
        assert rebuilt.warm(LEVEL) == 1
        third = rebuilt.query(LEVEL, 2, 400.0, accuracy=0.0)
        assert third.tier == "exact"
        assert third.access_time_ms == first.access_time_ms


class TestValidation:
    @pytest.mark.parametrize("accuracy", [-0.1, float("nan"), float("inf")])
    def test_bad_accuracy_refused(self, warm_oracle, accuracy):
        with pytest.raises(ConfigurationError):
            warm_oracle.query(LEVEL, 2, 300.0, accuracy=accuracy)

    def test_bad_channels_refused(self, warm_oracle):
        with pytest.raises(ConfigurationError):
            warm_oracle.query(LEVEL, 3, 300.0)

    def test_bad_frequency_refused(self, warm_oracle):
        with pytest.raises(ConfigurationError):
            warm_oracle.query(LEVEL, 2, 50.0)

    def test_level_resolved_by_name(self, warm_oracle):
        assert warm_oracle.query("3.1", 2, 300.0).level == "3.1"


class TestTelemetry:
    def test_counters_and_latency(self, tmp_path):
        cache = _warm_cache(tmp_path / "cache")
        telemetry = Telemetry.enabled()
        oracle = FeasibilityOracle(
            cache=cache, scale=SCALE, telemetry=telemetry
        )
        oracle.query(LEVEL, 2, 300.0, accuracy=0.5)   # surrogate
        oracle.query(LEVEL, 2, 266.0)                 # exact (surface)
        oracle.query(LEVEL, 4, 300.0, accuracy=0.5)   # analytic (no 4ch data)
        registry = telemetry.registry
        assert registry.counter("oracle.queries").value == 3
        assert registry.counter("oracle.tier_hits.surrogate").value == 1
        assert registry.counter("oracle.tier_hits.exact").value == 1
        assert registry.counter("oracle.tier_hits.analytic").value == 1
        assert registry.histogram("oracle.latency_seconds").count == 3

    def test_counters_pre_registered_at_zero(self):
        telemetry = Telemetry.enabled()
        FeasibilityOracle(telemetry=telemetry)
        assert telemetry.registry.counter("oracle.queries").value == 0
        assert telemetry.registry.counter("oracle.escalations").value == 0

    def test_escalations_counted(self, tmp_path):
        telemetry = Telemetry.enabled()
        oracle = FeasibilityOracle(
            cache=tmp_path / "cache", scale=SCALE, telemetry=telemetry
        )
        oracle.query(LEVEL, 2, 300.0, accuracy=0.0)  # analytic rejected
        assert telemetry.registry.counter("oracle.escalations").value == 1
