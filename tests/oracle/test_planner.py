"""Tests for the cost-based planner (:mod:`repro.oracle.planner`)."""

import importlib.util
import math

import pytest

from repro.errors import ConfigurationError
from repro.oracle.planner import (
    TIER_ANALYTIC,
    TIER_EXACT,
    TIER_SURROGATE,
    CostPlanner,
    feasibility_limit_ms,
    screen_survivors,
)

ANALYTIC_TOL = CostPlanner.analytic_tolerance()


class TestCheapestAdequateTier:
    """Each accuracy budget lands on the cheapest adequate tier."""

    def test_tight_surrogate_wins_generous_budget(self):
        plan = CostPlanner().plan(
            0.5, surrogate_bound=0.1, surrogate_verdict_certain=True
        )
        assert plan.tier == TIER_SURROGATE
        assert plan.backend is None
        assert plan.error_bound == 0.1
        assert plan.escalations == 0

    def test_loose_surrogate_escalates_to_analytic(self):
        plan = CostPlanner().plan(
            0.2, surrogate_bound=0.3, surrogate_verdict_certain=True
        )
        assert plan.tier == TIER_ANALYTIC
        assert plan.backend == "analytic"
        assert plan.error_bound == ANALYTIC_TOL
        assert plan.rejected == (TIER_SURROGATE,)
        assert plan.escalations == 1

    def test_budget_under_analytic_tolerance_goes_exact(self):
        plan = CostPlanner().plan(
            ANALYTIC_TOL / 2, surrogate_bound=0.3,
            surrogate_verdict_certain=True,
        )
        assert plan.tier == TIER_EXACT
        assert plan.error_bound == 0.0
        assert plan.rejected == (TIER_SURROGATE, TIER_ANALYTIC)
        assert plan.escalations == 2

    def test_zero_budget_demands_exact(self):
        plan = CostPlanner().plan(
            0.0, surrogate_bound=1e-9, surrogate_verdict_certain=True
        )
        assert plan.tier == TIER_EXACT

    def test_budget_exactly_at_analytic_tolerance_is_adequate(self):
        plan = CostPlanner().plan(ANALYTIC_TOL)
        assert plan.tier == TIER_ANALYTIC

    def test_no_surrogate_data_is_not_an_escalation(self):
        # A tier that *cannot* answer (cold cache: no surface) is
        # skipped silently; only a tier that answered inadequately
        # counts as an escalation.
        plan = CostPlanner().plan(0.5, surrogate_bound=None)
        assert plan.tier == TIER_ANALYTIC
        assert plan.escalations == 0

    def test_cold_cache_degrades_analytic_then_exact(self):
        planner = CostPlanner()
        screening = planner.plan(0.5, surrogate_bound=None)
        exact = planner.plan(0.0, surrogate_bound=None)
        assert screening.tier == TIER_ANALYTIC
        assert exact.tier == TIER_EXACT
        assert exact.rejected == (TIER_ANALYTIC,)

    def test_uncertain_verdict_rejects_surrogate_despite_tight_bound(self):
        # An interval straddling a verdict boundary must escalate even
        # when its relative error fits the budget.
        plan = CostPlanner().plan(
            0.5, surrogate_bound=0.01, surrogate_verdict_certain=False
        )
        assert plan.tier == TIER_ANALYTIC
        assert plan.rejected == (TIER_SURROGATE,)


class TestBudgetValidation:
    @pytest.mark.parametrize(
        "budget", [-0.1, float("nan"), float("inf"), float("-inf")]
    )
    def test_rejects_bad_budget(self, budget):
        with pytest.raises(ConfigurationError):
            CostPlanner().plan(budget)


class TestExactBackend:
    def test_default_prefers_batch_when_numpy_present(self):
        expected = (
            "batch"
            if importlib.util.find_spec("numpy") is not None
            else "fast"
        )
        assert CostPlanner().resolve_exact_backend() == expected

    def test_explicit_backend_honoured(self):
        assert CostPlanner("reference").resolve_exact_backend() == "reference"

    def test_analytic_refused_as_exact_tier(self):
        with pytest.raises(ConfigurationError, match="bit-identical"):
            CostPlanner("analytic")

    def test_unknown_backend_refused(self):
        with pytest.raises(ConfigurationError):
            CostPlanner("no-such-backend")


class _Point:
    def __init__(self, access_time_ms):
        self.access_time_ms = access_time_ms


class TestScreening:
    def test_limit_is_slacked_period(self):
        assert feasibility_limit_ms(100.0, 0.25) == pytest.approx(125.0)

    def test_zero_slack_is_the_raw_period(self):
        assert feasibility_limit_ms(33.3, 0.0) == pytest.approx(33.3)

    @pytest.mark.parametrize(
        "period", [0.0, -1.0, float("nan"), float("inf")]
    )
    def test_degenerate_period_refused(self, period):
        # The historical bug shape: a zero/non-finite period makes the
        # multiplicative slack a no-op and the screen silently discards
        # every point.  It must refuse loudly instead.
        with pytest.raises(ConfigurationError, match="frame period"):
            feasibility_limit_ms(period, 0.25)

    @pytest.mark.parametrize("slack", [-0.25, float("nan"), float("inf")])
    def test_bad_slack_refused(self, slack):
        with pytest.raises(ConfigurationError, match="slack"):
            feasibility_limit_ms(33.3, slack)

    def test_survivors_filtered_in_order(self):
        points = [_Point(90.0), _Point(126.0), _Point(110.0), _Point(125.0)]
        kept = screen_survivors(points, 100.0, 0.25)
        assert [p.access_time_ms for p in kept] == [90.0, 110.0, 125.0]

    def test_survivors_validate_the_limit(self):
        with pytest.raises(ConfigurationError):
            screen_survivors([_Point(1.0)], math.nan, 0.25)
