"""Tests for the feasibility oracle (:mod:`repro.oracle`)."""
