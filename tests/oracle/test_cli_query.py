"""Tests for the ``repro-sim query`` subcommand."""

import io
import json

import pytest

from repro.analysis.sweep import sweep_use_case
from repro.cli import main
from repro.core.config import SystemConfig
from repro.errors import ConfigurationError
from repro.resilience import SweepCheckpoint
from repro.usecase.levels import level_by_name

SCALE = str(1 / 256)


class TestSingleQuery:
    def test_prose_answer(self, capsys):
        assert main(["--scale", SCALE, "query", "--level", "3.1",
                     "--channels", "2", "--freq", "300"]) == 0
        out = capsys.readouterr().out
        assert "Feasibility query" in out
        assert "tier=" in out
        assert "err<=" in out
        assert "escalation" in out

    def test_json_answer(self, capsys):
        assert main(["--scale", SCALE, "query", "--level", "3.1",
                     "--channels", "2", "--freq", "300", "--json"]) == 0
        out = capsys.readouterr().out
        answer = json.loads(out)
        assert answer["level"] == "3.1"
        assert answer["channels"] == 2
        assert answer["tier"] in ("surrogate", "analytic", "exact")
        assert "error_bound" in answer
        assert "access_low_ms" in answer and "access_high_ms" in answer

    def test_exact_accuracy_via_flag(self, capsys):
        assert main(["--scale", SCALE, "query", "--level", "3.1",
                     "--channels", "2", "--freq", "300",
                     "--accuracy", "0", "--json"]) == 0
        answer = json.loads(capsys.readouterr().out)
        assert answer["tier"] == "exact"
        assert answer["error_bound"] == 0.0

    def test_checkpoint_is_not_truncated_by_query(self, tmp_path, capsys):
        # Every other subcommand truncates --checkpoint without
        # --resume; for query the checkpoint is a read-only harvest
        # source and must survive intact.
        checkpoint = tmp_path / "sweep.ckpt"
        sweep_use_case(
            [level_by_name("3.1")],
            [SystemConfig(channels=2, freq_mhz=f) for f in (266.0, 333.0)],
            scale=1 / 256,
            checkpoint=checkpoint,
            backend="fast",
        )
        assert len(SweepCheckpoint(checkpoint)) == 2
        assert main(["--scale", SCALE, "--checkpoint", str(checkpoint),
                     "query", "--level", "3.1", "--channels", "2",
                     "--freq", "300", "--json"]) == 0
        capsys.readouterr()
        assert len(SweepCheckpoint(checkpoint)) == 2


class TestBatchMode:
    QUERIES = (
        '{"level": "3.1", "channels": 2, "freq_mhz": 300.0}\n'
        '\n'
        '{"level": "4", "channels": 4, "freq_mhz": 400.0, "accuracy": 0.5}\n'
    )

    def _run(self, monkeypatch, capsys, cache_dir):
        monkeypatch.setattr("sys.stdin", io.StringIO(self.QUERIES))
        assert main(["--scale", SCALE, "--cache-dir", str(cache_dir),
                     "query", "--batch"]) == 0
        return capsys.readouterr().out

    def test_one_answer_per_query_line(self, monkeypatch, capsys, tmp_path):
        out = self._run(monkeypatch, capsys, tmp_path / "cache")
        answers = [json.loads(line) for line in out.splitlines() if line.strip()]
        assert len(answers) == 2
        assert answers[0]["level"] == "3.1"
        assert answers[1]["level"] == "4"
        assert all("tier" in a and "error_bound" in a for a in answers)

    def test_byte_stable_across_runs(self, monkeypatch, capsys, tmp_path):
        # Run 1 computes (and caches); run 2 serves from the warm
        # cache.  The bytes on stdout must be identical.
        first = self._run(monkeypatch, capsys, tmp_path / "cache")
        second = self._run(monkeypatch, capsys, tmp_path / "cache")
        assert first == second

    def test_malformed_line_is_named(self, monkeypatch, capsys):
        monkeypatch.setattr("sys.stdin", io.StringIO("not json\n"))
        with pytest.raises(ConfigurationError, match="line 1"):
            main(["--scale", SCALE, "query", "--batch"])

    def test_unknown_field_is_named(self, monkeypatch, capsys):
        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO('{"level": "4", "channels": 4, "freq_mhz": 400.0, "chanels": 2}\n'),
        )
        with pytest.raises(ConfigurationError, match="chanels"):
            main(["--scale", SCALE, "query", "--batch"])

    def test_missing_field_is_named(self, monkeypatch, capsys):
        monkeypatch.setattr("sys.stdin", io.StringIO('{"level": "4"}\n'))
        with pytest.raises(ConfigurationError, match="channels"):
            main(["--scale", SCALE, "query", "--batch"])
