"""Tests for surrogate surfaces (:mod:`repro.oracle.surrogate`)."""

import pytest

from repro.analysis.realtime import RealTimeVerdict
from repro.core.config import SystemConfig
from repro.oracle.surrogate import SurrogateSurface


class _Point:
    """Duck-typed stand-in for a SweepPoint (the surface only reads
    config/access/power)."""

    def __init__(self, channels, freq_mhz, access_time_ms, total_power_mw):
        self.config = SystemConfig(channels=channels, freq_mhz=freq_mhz)
        self.access_time_ms = access_time_ms
        self.total_power_mw = total_power_mw


def _surface(points):
    surface = SurrogateSurface()
    for point in points:
        surface.insert(point)
    return surface


class TestStorage:
    def test_insert_exact_roundtrip(self):
        point = _Point(2, 400.0, 10.0, 150.0)
        surface = _surface([point])
        assert len(surface) == 1
        assert surface.channels() == [2]
        assert surface.frequencies(2) == [400.0]
        assert surface.exact(2, 400.0) is point
        assert surface.exact(2, 333.0) is None
        assert surface.exact(4, 400.0) is None

    def test_reinsert_replaces(self):
        surface = _surface([_Point(2, 400.0, 10.0, 150.0)])
        newer = _Point(2, 400.0, 11.0, 151.0)
        surface.insert(newer)
        assert len(surface) == 1
        assert surface.exact(2, 400.0) is newer


class TestInterpolation:
    def test_inverse_frequency_law_is_interpolated_exactly(self):
        # For access = k / f the 1/f interpolation is exact, not
        # approximate: the estimate at any interior frequency must
        # reproduce the law.
        k = 8000.0
        surface = _surface(
            [_Point(2, f, k / f, 100.0 + f / 10.0) for f in (200.0, 400.0)]
        )
        est = surface.estimate(2, 320.0, frame_period_ms=66.7)
        assert est is not None
        assert est.access_time_ms == pytest.approx(k / 320.0, rel=1e-12)
        assert est.bracket_mhz == (200.0, 400.0)

    def test_interval_brackets_and_bound_is_positive(self):
        surface = _surface(
            [
                _Point(2, 266.0, 20.0, 140.0),
                _Point(2, 333.0, 16.0, 150.0),
            ]
        )
        est = surface.estimate(2, 300.0, frame_period_ms=66.7)
        assert est.access_low_ms == 16.0
        assert est.access_high_ms == 20.0
        assert est.access_low_ms <= est.access_time_ms <= est.access_high_ms
        assert est.power_low_mw <= est.total_power_mw <= est.power_high_mw
        # Never masquerades as exact: a surrogate answer always admits
        # a strictly positive error bound.
        assert est.error_bound > 0.0

    def test_nearest_bracket_used(self):
        surface = _surface(
            [_Point(1, f, 6400.0 / f, 100.0) for f in (200.0, 266.0, 333.0, 400.0)]
        )
        est = surface.estimate(1, 300.0, frame_period_ms=33.3)
        assert est.bracket_mhz == (266.0, 333.0)

    def test_verdict_certain_when_both_endpoints_agree(self):
        surface = _surface(
            [_Point(2, 200.0, 20.0, 100.0), _Point(2, 400.0, 10.0, 120.0)]
        )
        est = surface.estimate(2, 300.0, frame_period_ms=100.0)
        assert est.verdict is RealTimeVerdict.PASS
        assert est.verdict_certain

    def test_verdict_uncertain_when_interval_straddles_boundary(self):
        # [20, 40] around a 33.3 ms period: one endpoint passes, the
        # other fails -- the estimate must say so.
        surface = _surface(
            [_Point(2, 200.0, 40.0, 100.0), _Point(2, 400.0, 20.0, 120.0)]
        )
        est = surface.estimate(2, 300.0, frame_period_ms=33.3)
        assert not est.verdict_certain


class TestNoGuessing:
    def test_no_extrapolation_below_range(self):
        surface = _surface(
            [_Point(2, 266.0, 20.0, 140.0), _Point(2, 333.0, 16.0, 150.0)]
        )
        assert surface.estimate(2, 200.0, frame_period_ms=33.3) is None
        assert surface.estimate(2, 400.0, frame_period_ms=33.3) is None

    def test_single_point_cannot_interpolate(self):
        surface = _surface([_Point(2, 266.0, 20.0, 140.0)])
        assert surface.estimate(2, 300.0, frame_period_ms=33.3) is None

    def test_never_crosses_channel_counts(self):
        # Plenty of 2-channel data must not answer a 4-channel query:
        # channel scaling is the effect under study, not noise.
        surface = _surface(
            [_Point(2, f, 6400.0 / f, 100.0) for f in (200.0, 400.0)]
        )
        assert surface.estimate(4, 300.0, frame_period_ms=33.3) is None

    def test_nonmonotone_data_still_bracketed(self):
        # If the stored data is locally non-monotone the interval
        # falls back to [min, max] of the bracket -- the CI contract
        # never relies on monotonicity.
        surface = _surface(
            [_Point(2, 266.0, 16.0, 140.0), _Point(2, 333.0, 20.0, 150.0)]
        )
        est = surface.estimate(2, 300.0, frame_period_ms=66.7)
        assert est.access_low_ms == 16.0
        assert est.access_high_ms == 20.0
        assert est.access_low_ms <= est.access_time_ms <= est.access_high_ms
