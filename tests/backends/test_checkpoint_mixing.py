"""Checkpoint/backend interaction: resuming must not blend fidelities.

A checkpoint written under one backend holds that backend's numbers;
silently resuming the sweep under another would splice e.g. analytic
estimates into a reference figure.  The sweep layer refuses the mix
with :class:`~repro.errors.CheckpointError` unless forced
(``checkpoint_force=True`` / CLI ``--force``).
"""

import pytest

from repro.analysis.sweep import sweep_use_case
from repro.core.config import SystemConfig
from repro.errors import CheckpointError
from repro.usecase.levels import level_by_name

BUDGET = 5_000


@pytest.fixture
def level():
    return level_by_name("3.1")


@pytest.fixture
def configs():
    return [SystemConfig(channels=2, freq_mhz=400.0)]


def _sweep(level, configs, path, **kwargs):
    return sweep_use_case(
        [level], configs, chunk_budget=BUDGET, checkpoint=path, **kwargs
    )


class TestBackendMixingGuard:
    def test_same_backend_resume_allowed(self, tmp_path, level, configs):
        path = tmp_path / "sweep.ckpt"
        first = _sweep(level, configs, path, backend="reference")
        resumed = _sweep(level, configs, path, backend="reference")
        assert resumed.points[0].access_time_ms == first.points[0].access_time_ms

    def test_mixing_backends_refused(self, tmp_path, level, configs):
        path = tmp_path / "sweep.ckpt"
        _sweep(level, configs, path, backend="reference")
        with pytest.raises(CheckpointError) as excinfo:
            _sweep(level, configs, path, backend="fast")
        message = str(excinfo.value)
        assert "reference" in message
        assert "fast" in message
        assert "--force" in message or "checkpoint_force" in message

    def test_mixing_refusal_names_batch(self, tmp_path, level, configs):
        pytest.importorskip("numpy", reason="batch backend needs numpy")
        path = tmp_path / "sweep.ckpt"
        _sweep(level, configs, path, backend="batch")
        with pytest.raises(CheckpointError) as excinfo:
            _sweep(level, configs, path, backend="reference")
        message = str(excinfo.value)
        assert "batch" in message
        assert "reference" in message

    def test_force_allows_mixing(self, tmp_path, level, configs):
        path = tmp_path / "sweep.ckpt"
        _sweep(level, configs, path, backend="reference")
        report = _sweep(
            level, configs, path, backend="fast", checkpoint_force=True
        )
        assert len(report.points) == 1

    def test_distinct_backends_do_not_share_points(self, tmp_path, level, configs):
        """Backend is part of the job key: a forced mixed checkpoint
        still recomputes (rather than reuses) the other backend's
        points."""
        path = tmp_path / "sweep.ckpt"
        ref = _sweep(level, configs, path, backend="reference")
        fast = _sweep(
            level, configs, path, backend="fast", checkpoint_force=True
        )
        # Bit-identical backends, but independently keyed entries.
        assert fast.points[0].access_time_ms == ref.points[0].access_time_ms
        entries = path.read_text().strip().splitlines()
        assert len(entries) == 2
