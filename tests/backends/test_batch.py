"""Batch-backend specifics: numpy gating, decode cache, fallbacks.

Cross-backend parity/registry/checkpoint behaviour lives in the
sibling suites (parametrized over ``batch``); this file pins what is
unique to the batch engine -- the optional-dependency error path, the
cross-point decode cache, and the exact-fallback paths that delegate
to the reference stepper.
"""

from collections import OrderedDict

import hypothesis
import pytest
from hypothesis import strategies as st

np = pytest.importorskip("numpy", reason="batch backend needs numpy")

from repro.backends import batch as batch_module
from repro.backends.registry import get_backend
from repro.controller.mapping import AddressMultiplexing
from repro.core.channel import Channel
from repro.core.config import PagePolicy, SystemConfig
from repro.errors import AddressError, ConfigurationError

RUNS = [(0, 0, 512), (1, 4096, 512), (0, 64, 256)]


@pytest.fixture
def fresh_cache():
    batch_module.clear_decode_cache()
    yield
    batch_module.clear_decode_cache()


class TestNumpyGating:
    def test_create_without_numpy_raises_configuration_error(self, monkeypatch):
        monkeypatch.setattr(batch_module, "_np", None)
        with pytest.raises(ConfigurationError) as excinfo:
            get_backend("batch").create(SystemConfig(backend="batch"))
        message = str(excinfo.value)
        assert "numpy" in message
        assert "repro[batch]" in message
        # The error must point at working alternatives.
        for name in ("reference", "fast", "analytic"):
            assert name in message

    def test_registry_entry_resolves_without_numpy(self, monkeypatch):
        # Selecting the name must stay cheap and legal without numpy;
        # only *creating* an engine requires the extra.
        monkeypatch.setattr(batch_module, "_np", None)
        config = SystemConfig(backend="batch")
        assert config.backend == "batch"


class TestDecodeCache:
    def test_sweep_points_share_one_decode(self, fresh_cache):
        config = SystemConfig(channels=1, backend="batch")
        for freq in (200.0, 266.0, 333.0, 400.0):
            Channel(config.with_frequency(freq)).run(RUNS)
        stats = batch_module.decode_cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 3

    def test_distinct_mappings_decode_separately(self, fresh_cache):
        config = SystemConfig(channels=1, backend="batch")
        Channel(config).run(RUNS)
        remapped = SystemConfig(
            channels=1,
            backend="batch",
            multiplexing=AddressMultiplexing.BRC,
        )
        Channel(remapped).run(RUNS)
        stats = batch_module.decode_cache_stats()
        assert stats["misses"] == 2

    def test_cache_is_bounded(self, fresh_cache):
        config = SystemConfig(channels=1, backend="batch")
        for i in range(batch_module.DECODE_CACHE_SIZE + 4):
            Channel(config).run([(0, i * 16, 64)])
        assert len(batch_module._DECODE_CACHE) == batch_module.DECODE_CACHE_SIZE

    def test_stats_ledger_closes_after_real_runs(self, fresh_cache):
        # Overflow the cache with distinct run lists, revisit a few:
        # the counters must close as a ledger, not merely trend.
        config = SystemConfig(channels=1, backend="batch")
        for i in range(batch_module.DECODE_CACHE_SIZE + 6):
            Channel(config).run([(0, i * 16, 64)])
        Channel(config).run([(0, (batch_module.DECODE_CACHE_SIZE + 5) * 16, 64)])
        stats = batch_module.decode_cache_stats()
        assert stats["hits"] + stats["misses"] == stats["lookups"]
        assert stats["insertions"] == stats["misses"]
        assert stats["evictions"] <= stats["insertions"]
        assert stats["entries"] == stats["insertions"] - stats["evictions"]
        assert stats["entries"] <= batch_module.DECODE_CACHE_SIZE
        assert stats["evictions"] == 6
        assert stats["hits"] == 1


class TestDecodeCacheLedgerProperty:
    """Property test: the decode-cache counters form a closed ledger
    under *any* lookup sequence, including eviction churn.

    Drives :func:`batch._decode_cached` directly with a stubbed decode
    (the ledger does not care what a segment table contains) and
    checks, after every single operation, the invariants documented on
    :func:`batch.decode_cache_stats` plus exact hit/miss agreement
    with a model LRU.
    """

    class _StubMapping:
        bank_shift = bank_mask = row_shift = row_mask = 0
        xor_shift = xor_mask = 0

    @hypothesis.given(
        sequence=st.lists(
            st.integers(min_value=0, max_value=2 * batch_module.DECODE_CACHE_SIZE),
            max_size=150,
        )
    )
    def test_ledger_invariants_hold_after_every_op(self, sequence):
        real_decode = batch_module._decode_stream
        batch_module._decode_stream = lambda runs, mapping: object()
        batch_module.clear_decode_cache()
        try:
            model = OrderedDict()
            model_hits = 0
            for key_id in sequence:
                runs = ((0, key_id, 0, 0),)
                batch_module._decode_cached(runs, self._StubMapping())
                if key_id in model:
                    model.move_to_end(key_id)
                    model_hits += 1
                else:
                    model[key_id] = True
                    while len(model) > batch_module.DECODE_CACHE_SIZE:
                        model.popitem(last=False)
                stats = batch_module.decode_cache_stats()
                assert stats["hits"] + stats["misses"] == stats["lookups"]
                assert stats["insertions"] == stats["misses"]
                assert stats["evictions"] <= stats["insertions"]
                assert (
                    stats["entries"]
                    == stats["insertions"] - stats["evictions"]
                )
                assert stats["entries"] <= batch_module.DECODE_CACHE_SIZE
                assert stats["hits"] == model_hits
                assert stats["entries"] == len(model)
            stats = batch_module.decode_cache_stats()
            assert stats["lookups"] == len(sequence)
        finally:
            batch_module._decode_stream = real_decode
            batch_module.clear_decode_cache()


class TestFallbacks:
    def test_closed_page_falls_back_to_reference_loop(self):
        config = SystemConfig(
            channels=1, page_policy=PagePolicy.CLOSED, backend="batch"
        )
        ref = Channel(config.with_backend("reference")).run(RUNS)
        out = Channel(config).run(RUNS)
        assert out == ref

    def test_invariant_checking_engine_matches_reference(self):
        config = SystemConfig(channels=1, backend="batch")
        engine = get_backend("batch").create(config)
        engine.check_invariants = True
        ref = Channel(config.with_backend("reference")).run(RUNS)
        assert engine.run(RUNS) == ref

    def test_capacity_error_matches_reference_message(self):
        config = SystemConfig(channels=1, backend="batch")
        huge = [(0, 0, 1 << 40)]
        with pytest.raises(AddressError) as batch_err:
            Channel(config).run(huge)
        with pytest.raises(AddressError) as ref_err:
            Channel(config.with_backend("reference")).run(huge)
        assert str(batch_err.value) == str(ref_err.value)
