"""Backend registry: discovery, registration, defaults, error paths."""

import pytest

from repro.backends import (
    ChannelBackend,
    available_backends,
    get_backend,
    register_backend,
    set_default_backend,
    unregister_backend,
)
from repro.backends.registry import default_backend_name, validate_backend_name
from repro.core.config import SystemConfig
from repro.errors import ConfigurationError


class TestBuiltins:
    def test_builtins_listed(self):
        names = available_backends()
        for name in ("reference", "fast", "analytic", "batch"):
            assert name in names

    def test_get_backend_caches(self):
        assert get_backend("reference") is get_backend("reference")

    def test_backend_metadata(self):
        ref = get_backend("reference")
        assert ref.name == "reference"
        assert ref.supports_command_log
        fast = get_backend("fast")
        assert fast.name == "fast"
        assert fast.supports_command_log
        analytic = get_backend("analytic")
        assert analytic.name == "analytic"
        assert not analytic.supports_command_log
        batch = get_backend("batch")
        assert batch.name == "batch"
        assert batch.supports_command_log
        assert batch.reference_tolerance == 0.0
        assert batch.bit_identical

    def test_default_is_reference_out_of_the_box(self, pytestconfig):
        if pytestconfig.getoption("--backend"):
            pytest.skip("suite runs under an explicit --backend override")
        assert default_backend_name() == "reference"


class TestErrorPaths:
    def test_unknown_backend_raises_listing_registered(self):
        with pytest.raises(ConfigurationError) as excinfo:
            get_backend("warp-drive")
        message = str(excinfo.value)
        assert "warp-drive" in message
        for name in ("reference", "fast", "analytic", "batch"):
            assert name in message

    def test_validate_rejects_non_string(self):
        with pytest.raises(ConfigurationError):
            validate_backend_name(42)

    def test_config_rejects_unknown_backend(self):
        with pytest.raises(ConfigurationError) as excinfo:
            SystemConfig(backend="nope")
        assert "nope" in str(excinfo.value)
        assert "reference" in str(excinfo.value)

    def test_set_default_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            set_default_backend("nope")


class _TinyBackend(ChannelBackend):
    name = "tiny"
    description = "test-only stub"

    def create(self, config, index=0):  # pragma: no cover - never run
        raise NotImplementedError


class TestRegistration:
    def test_register_and_unregister(self):
        register_backend(_TinyBackend())
        try:
            assert "tiny" in available_backends()
            config = SystemConfig(backend="tiny")
            assert config.backend == "tiny"
            assert "backend=tiny" in config.describe()
        finally:
            unregister_backend("tiny")
        assert "tiny" not in available_backends()

    def test_duplicate_registration_needs_replace(self):
        register_backend(_TinyBackend())
        try:
            with pytest.raises(ConfigurationError):
                register_backend(_TinyBackend())
            register_backend(_TinyBackend(), replace=True)
        finally:
            unregister_backend("tiny")

    def test_default_backend_roundtrip(self):
        previous = set_default_backend("fast")
        try:
            assert default_backend_name() == "fast"
            assert SystemConfig().backend == "fast"
        finally:
            set_default_backend(previous)

    def test_with_backend_returns_new_config(self):
        base = SystemConfig(channels=4)
        fast = base.with_backend("fast")
        assert fast.backend == "fast"
        assert fast.channels == base.channels
        assert base.backend != "fast" or base is not fast
