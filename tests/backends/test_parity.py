"""Backend parity: fast vs reference (exact) and analytic (tolerance).

The contracts pinned here are the ones docs/architecture.md (Backends)
documents:

- ``fast`` returns *identical command counts* and access time within
  1 % of ``reference`` (it is in fact designed to be bit-identical --
  one test pins the stronger property on a full streaming frame);
- ``analytic`` tracks the reference access time within 15 % on the
  paper's streaming workloads;
- both hold across the Fig. 3 frequency sweep and the Fig. 4 format
  sweep configurations.
"""

import pytest

from repro.core.channel import Channel
from repro.core.config import PAPER_FREQUENCIES_MHZ, SystemConfig
from repro.core.system import MultiChannelMemorySystem
from repro.load.model import VideoRecordingLoadModel
from repro.load.scaling import choose_scale
from repro.usecase.levels import level_by_name
from repro.usecase.pipeline import VideoRecordingUseCase

#: Simulated-burst budget for parity runs: small enough to keep the
#: suite quick, large enough that every config sees refresh windows,
#: direction switches and bank conflicts.
PARITY_BUDGET = 20_000

#: Documented analytic access-time tolerance (docs/architecture.md).
ANALYTIC_TOLERANCE = 0.15

_TRAFFIC_CACHE = {}


def _frame_traffic(level_name):
    """One (scaled) frame of streaming traffic for ``level_name``."""
    if level_name not in _TRAFFIC_CACHE:
        use_case = VideoRecordingUseCase(level_by_name(level_name))
        load = VideoRecordingLoadModel(use_case)
        scale = choose_scale(use_case.total_bytes_per_frame(), PARITY_BUDGET)
        _TRAFFIC_CACHE[level_name] = (load.generate_frame(scale=scale), scale)
    return _TRAFFIC_CACHE[level_name]


def _run(level_name, config, backend):
    txns, scale = _frame_traffic(level_name)
    system = MultiChannelMemorySystem(config.with_backend(backend))
    return system.run(txns, scale=scale)


#: Fig. 3 axis: the single-channel frequency sweep on 720p30.
FIG3_CONFIGS = [
    ("3.1", SystemConfig(channels=1, freq_mhz=f)) for f in PAPER_FREQUENCIES_MHZ
]

#: Fig. 4 axis: the format (level) sweep at the paper's 400 MHz point.
FIG4_CONFIGS = [
    (name, SystemConfig(channels=channels, freq_mhz=400.0))
    for name, channels in (("3.1", 1), ("3.2", 2), ("4", 4), ("4.2", 8))
]

SWEEP = FIG3_CONFIGS + FIG4_CONFIGS
SWEEP_IDS = [
    f"{name}-{config.channels}ch-{config.freq_mhz:g}MHz"
    for name, config in SWEEP
]


@pytest.mark.parametrize("level_name, config", SWEEP, ids=SWEEP_IDS)
class TestFastParity:
    def test_identical_command_counts(self, level_name, config):
        ref = _run(level_name, config, "reference")
        fast = _run(level_name, config, "fast")
        assert fast.merged_counters().as_dict() == ref.merged_counters().as_dict()

    def test_access_time_within_one_percent(self, level_name, config):
        ref = _run(level_name, config, "reference")
        fast = _run(level_name, config, "fast")
        assert fast.access_time_ms == pytest.approx(ref.access_time_ms, rel=0.01)


@pytest.mark.parametrize("level_name, config", SWEEP, ids=SWEEP_IDS)
class TestAnalyticParity:
    def test_access_time_within_documented_tolerance(self, level_name, config):
        ref = _run(level_name, config, "reference")
        analytic = _run(level_name, config, "analytic")
        assert analytic.access_time_ms == pytest.approx(
            ref.access_time_ms, rel=ANALYTIC_TOLERANCE
        )

    def test_chunk_accounting_exact(self, level_name, config):
        ref = _run(level_name, config, "reference")
        analytic = _run(level_name, config, "analytic")
        counters_ref = ref.merged_counters()
        counters_ana = analytic.merged_counters()
        # Data movement is exact by construction; only timing is modelled.
        assert counters_ana.reads == counters_ref.reads
        assert counters_ana.writes == counters_ref.writes


class TestFastBitIdentity:
    """The stronger property the design actually delivers: the fast
    engine's batching is applied only when provably exact, so whole
    results -- finish cycles, per-bank balance, power-state residencies
    -- match the reference bit for bit."""

    @pytest.mark.parametrize(
        "config",
        [
            SystemConfig(channels=1, freq_mhz=400.0),
            SystemConfig(channels=4, freq_mhz=200.0),
            SystemConfig(channels=4, freq_mhz=533.0),
        ],
        ids=["1ch-400", "4ch-200", "4ch-533"],
    )
    def test_full_result_identical(self, config):
        ref = _run("4", config, "reference")
        fast = _run("4", config, "fast")
        assert fast.access_time_ms == ref.access_time_ms
        assert fast.engine_stats() == ref.engine_stats()
        for ch_ref, ch_fast in zip(ref.channels, fast.channels):
            assert ch_fast.finish_cycle == ch_ref.finish_cycle
            assert ch_fast.data_cycles == ch_ref.data_cycles
            assert ch_fast.counters.as_dict() == ch_ref.counters.as_dict()
            assert ch_fast.bank_accesses == ch_ref.bank_accesses
            assert ch_fast.states == ch_ref.states

    def test_command_log_identical(self):
        """With a command log attached the fast engine falls back to
        stepping, so the logged command stream matches exactly."""
        config = SystemConfig(channels=1, freq_mhz=400.0)
        runs = [(0, 0, 512), (1, 4096, 512), (0, 64, 256)]
        ref_log, fast_log = [], []
        Channel(config.with_backend("reference")).run(runs, command_log=ref_log)
        Channel(config.with_backend("fast")).run(runs, command_log=fast_log)
        assert fast_log == ref_log
        assert len(ref_log) > 0
