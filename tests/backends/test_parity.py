"""Backend parity: fast/batch vs reference (exact), analytic (tolerance).

The contracts pinned here are the ones docs/architecture.md (Backends)
documents:

- ``fast`` and ``batch`` return *identical command counts* and access
  time within 1 % of ``reference`` (both are in fact designed to be
  bit-identical -- one test class pins the stronger property on a full
  streaming frame);
- ``analytic`` tracks the reference access time within 15 % on the
  paper's streaming workloads;
- all hold across the Fig. 3 frequency sweep and the Fig. 4 format
  sweep configurations.

``batch`` needs numpy (the ``repro[batch]`` extra); its cases skip
when numpy is absent rather than fail, matching the optional-extra
contract.
"""

import importlib.util

import pytest

from repro.core.channel import Channel
from repro.core.config import PAPER_FREQUENCIES_MHZ, SystemConfig
from repro.core.system import MultiChannelMemorySystem
from repro.load.model import VideoRecordingLoadModel
from repro.load.scaling import choose_scale
from repro.usecase.levels import level_by_name
from repro.usecase.pipeline import VideoRecordingUseCase

#: Simulated-burst budget for parity runs: small enough to keep the
#: suite quick, large enough that every config sees refresh windows,
#: direction switches and bank conflicts.
PARITY_BUDGET = 20_000

#: Documented analytic access-time tolerance (docs/architecture.md).
ANALYTIC_TOLERANCE = 0.15

needs_numpy = pytest.mark.skipif(
    importlib.util.find_spec("numpy") is None,
    reason="batch backend needs the numpy optional extra",
)

#: The backends documented as bit-identical to the reference.
EXACT_BACKENDS = ["fast", pytest.param("batch", marks=needs_numpy)]

_TRAFFIC_CACHE = {}
_RESULT_CACHE = {}


def _frame_traffic(level_name):
    """One (scaled) frame of streaming traffic for ``level_name``."""
    if level_name not in _TRAFFIC_CACHE:
        use_case = VideoRecordingUseCase(level_by_name(level_name))
        load = VideoRecordingLoadModel(use_case)
        scale = choose_scale(use_case.total_bytes_per_frame(), PARITY_BUDGET)
        _TRAFFIC_CACHE[level_name] = (load.generate_frame(scale=scale), scale)
    return _TRAFFIC_CACHE[level_name]


def _run(level_name, config, backend):
    # Results are pure values and the sweep axes repeat across test
    # classes, so memoise: three exact backends over the same grid
    # would otherwise re-run the slow reference point per comparison.
    key = (level_name, config.channels, config.freq_mhz, backend)
    if key not in _RESULT_CACHE:
        txns, scale = _frame_traffic(level_name)
        system = MultiChannelMemorySystem(config.with_backend(backend))
        _RESULT_CACHE[key] = system.run(txns, scale=scale)
    return _RESULT_CACHE[key]


#: Fig. 3 axis: the single-channel frequency sweep on 720p30.
FIG3_CONFIGS = [
    ("3.1", SystemConfig(channels=1, freq_mhz=f)) for f in PAPER_FREQUENCIES_MHZ
]

#: Fig. 4 axis: the format (level) sweep at the paper's 400 MHz point.
FIG4_CONFIGS = [
    (name, SystemConfig(channels=channels, freq_mhz=400.0))
    for name, channels in (("3.1", 1), ("3.2", 2), ("4", 4), ("4.2", 8))
]

SWEEP = FIG3_CONFIGS + FIG4_CONFIGS
SWEEP_IDS = [
    f"{name}-{config.channels}ch-{config.freq_mhz:g}MHz"
    for name, config in SWEEP
]


@pytest.mark.parametrize("backend", EXACT_BACKENDS)
@pytest.mark.parametrize("level_name, config", SWEEP, ids=SWEEP_IDS)
class TestExactParity:
    def test_identical_command_counts(self, level_name, config, backend):
        ref = _run(level_name, config, "reference")
        out = _run(level_name, config, backend)
        assert out.merged_counters().as_dict() == ref.merged_counters().as_dict()

    def test_access_time_within_one_percent(self, level_name, config, backend):
        ref = _run(level_name, config, "reference")
        out = _run(level_name, config, backend)
        assert out.access_time_ms == pytest.approx(ref.access_time_ms, rel=0.01)


@pytest.mark.parametrize("level_name, config", SWEEP, ids=SWEEP_IDS)
class TestAnalyticParity:
    def test_access_time_within_documented_tolerance(self, level_name, config):
        ref = _run(level_name, config, "reference")
        analytic = _run(level_name, config, "analytic")
        assert analytic.access_time_ms == pytest.approx(
            ref.access_time_ms, rel=ANALYTIC_TOLERANCE
        )

    def test_chunk_accounting_exact(self, level_name, config):
        ref = _run(level_name, config, "reference")
        analytic = _run(level_name, config, "analytic")
        counters_ref = ref.merged_counters()
        counters_ana = analytic.merged_counters()
        # Data movement is exact by construction; only timing is modelled.
        assert counters_ana.reads == counters_ref.reads
        assert counters_ana.writes == counters_ref.writes


@pytest.mark.parametrize("backend", EXACT_BACKENDS)
class TestBitIdentity:
    """The stronger property the design actually delivers: fast and
    batch apply their shortcuts only when provably exact, so whole
    results -- finish cycles, per-bank balance, power-state residencies
    -- match the reference bit for bit."""

    @pytest.mark.parametrize(
        "config",
        [
            SystemConfig(channels=1, freq_mhz=400.0),
            SystemConfig(channels=4, freq_mhz=200.0),
            SystemConfig(channels=4, freq_mhz=533.0),
        ],
        ids=["1ch-400", "4ch-200", "4ch-533"],
    )
    def test_full_result_identical(self, config, backend):
        ref = _run("4", config, "reference")
        out = _run("4", config, backend)
        assert out.access_time_ms == ref.access_time_ms
        assert out.engine_stats() == ref.engine_stats()
        for ch_ref, ch_out in zip(ref.channels, out.channels):
            assert ch_out.finish_cycle == ch_ref.finish_cycle
            assert ch_out.data_cycles == ch_ref.data_cycles
            assert ch_out.counters.as_dict() == ch_ref.counters.as_dict()
            assert ch_out.bank_accesses == ch_ref.bank_accesses
            assert ch_out.states == ch_ref.states

    def test_command_log_identical(self, backend):
        """With a command log attached the engine falls back to
        stepping, so the logged command stream matches exactly."""
        config = SystemConfig(channels=1, freq_mhz=400.0)
        runs = [(0, 0, 512), (1, 4096, 512), (0, 64, 256)]
        ref_log, out_log = [], []
        Channel(config.with_backend("reference")).run(runs, command_log=ref_log)
        Channel(config.with_backend(backend)).run(runs, command_log=out_log)
        assert out_log == ref_log
        assert len(ref_log) > 0
