"""Fault injection and the runtime DRAM-protocol invariant checker."""

import os

import pytest

from repro.analysis.experiments import run_fig3
from repro.analysis.sweep import sweep_use_case
from repro.controller.engine import ChannelEngine
from repro.core.config import SystemConfig
from repro.errors import (
    ConfigurationError,
    ProtocolError,
    SimulationError,
    WorkerError,
)
from repro.parallel import pool_supported
from repro.resilience import SweepCheckpoint, SweepReport
from repro.resilience import faults
from repro.usecase.levels import level_by_name

BUDGET = 2000
LEVEL = level_by_name("3.1")
CONFIGS = [SystemConfig(channels=m) for m in (1, 2, 4)]

needs_pool = pytest.mark.skipif(
    not pool_supported(), reason="platform cannot start worker processes"
)


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = faults.FaultPlan(site="sweep", index=3, mode="raise")
        assert faults.FaultPlan.from_json(plan.to_json()) == plan

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="mode"):
            faults.FaultPlan(site="sweep", index=0, mode="explode")
        with pytest.raises(ConfigurationError, match="index"):
            faults.FaultPlan(site="sweep", index=-1)
        with pytest.raises(ConfigurationError, match="marker_path"):
            faults.FaultPlan(site="sweep", index=0, mode="crash")

    def test_injected_context_arms_and_disarms(self):
        plan = faults.FaultPlan(site="s", index=0)
        assert faults.FAULT_PLAN_ENV not in os.environ
        with faults.injected(plan):
            assert os.environ[faults.FAULT_PLAN_ENV] == plan.to_json()
        assert faults.FAULT_PLAN_ENV not in os.environ

    def test_maybe_inject_is_inert_without_plan(self):
        faults.maybe_inject("sweep", 0)  # no plan armed: no-op

    def test_maybe_inject_ignores_other_sites(self):
        with faults.injected(faults.FaultPlan(site="elsewhere", index=0)):
            faults.maybe_inject("sweep", 0)

    def test_maybe_inject_raises_at_target(self):
        with faults.injected(faults.FaultPlan(site="s", index=2)):
            faults.maybe_inject("s", 1)
            with pytest.raises(SimulationError, match="injected fault"):
                faults.maybe_inject("s", 2)

    def test_unreadable_plan_is_a_loud_error(self, monkeypatch):
        monkeypatch.setenv(faults.FAULT_PLAN_ENV, "not json")
        with pytest.raises(ConfigurationError, match="unreadable fault plan"):
            faults.maybe_inject("s", 0)


class TestSweepDegradation:
    """Acceptance: a fault at point N leaves every other point intact."""

    def test_strict_sweep_wraps_failure_as_worker_error(self):
        with faults.injected(faults.FaultPlan(site="sweep", index=1)):
            with pytest.raises(WorkerError) as excinfo:
                sweep_use_case([LEVEL], CONFIGS, chunk_budget=BUDGET)
        err = excinfo.value
        assert err.coords["index"] == 1
        assert err.coords["channels"] == 2
        assert err.coords["level"] == "3.1"
        assert "SimulationError" in (err.traceback or "")

    def test_graceful_sweep_completes_other_points(self):
        with faults.injected(faults.FaultPlan(site="sweep", index=1)):
            report = sweep_use_case(
                [LEVEL], CONFIGS, chunk_budget=BUDGET, strict=False
            )
        assert isinstance(report, SweepReport)
        assert not report.ok
        assert [p.config.channels for p in report] == [1, 4]
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert failure.coords["channels"] == 2
        assert failure.error_type == "SimulationError"
        assert "channels=2" in report.format_failures()
        assert "1 failed" in report.summary()

    def test_resume_after_fault_is_bit_identical(self, tmp_path):
        """The headline scenario: crash at point N, resume, and get the
        exact uninterrupted-sequential-sweep answer."""
        path = tmp_path / "sweep.ckpt"
        with faults.injected(faults.FaultPlan(site="sweep", index=1)):
            partial = sweep_use_case(
                [LEVEL],
                CONFIGS,
                chunk_budget=BUDGET,
                checkpoint=path,
                strict=False,
            )
        assert len(partial) == 2
        assert len(SweepCheckpoint(path)) == 2

        # Fault cleared (the operator fixed the box); resume.
        resumed = sweep_use_case(
            [LEVEL], CONFIGS, chunk_budget=BUDGET, checkpoint=path
        )
        assert resumed.ok
        assert resumed.resumed == 2

        fresh = sweep_use_case([LEVEL], CONFIGS, chunk_budget=BUDGET)
        assert list(resumed) == list(fresh)

    @needs_pool
    def test_worker_crash_recovers_without_losing_points(self, tmp_path):
        plan = faults.FaultPlan(
            site="sweep",
            index=1,
            mode="crash",
            once=True,
            marker_path=str(tmp_path / "sweep.marker"),
        )
        with faults.injected(plan):
            report = sweep_use_case(
                [LEVEL], CONFIGS, chunk_budget=BUDGET, workers=2
            )
        # The crash killed one pool attempt; the retry completed every
        # point with bit-identical results.
        assert report.ok
        fresh = sweep_use_case([LEVEL], CONFIGS, chunk_budget=BUDGET)
        assert list(report) == list(fresh)


class TestInputCorruption:
    def test_corrupt_timing_replaces_field(self):
        timing = SystemConfig().device.timing.at_frequency(400.0)
        skewed = faults.corrupt_timing(timing, "t_rcd", -2)
        assert skewed.t_rcd == timing.t_rcd - 2
        assert timing.t_rcd != skewed.t_rcd  # original untouched

    def test_corrupt_timing_floors_at_zero(self):
        timing = SystemConfig().device.timing.at_frequency(400.0)
        assert faults.corrupt_timing(timing, "t_rcd", -1000).t_rcd == 0

    def test_corrupt_timing_rejects_unknown_field(self):
        timing = SystemConfig().device.timing.at_frequency(400.0)
        with pytest.raises(ConfigurationError, match="no parameter"):
            faults.corrupt_timing(timing, "t_bogus", -1)
        with pytest.raises(ConfigurationError, match="not a cycle count"):
            faults.corrupt_timing(timing, "t_ck_ns", -1)

    def test_malformed_runs_rejected_by_engine(self):
        config = SystemConfig()
        engine = ChannelEngine(device=config.device, freq_mhz=400.0)
        runs = [(0, 0, 1), (1, 8, 1)]
        damaged = faults.malformed_runs(runs, at=1)
        with pytest.raises(ConfigurationError, match="op must be 0 or 1"):
            engine.run(damaged)
        with pytest.raises(ConfigurationError, match="outside"):
            faults.malformed_runs(runs, at=5)


def _two_rows_same_bank(engine):
    """Two accesses forcing ACT->use->PRE->ACT on one bank, so the
    row-management timings (tRCD/tRP/tRAS) all bind."""
    other_row = 1 << engine.mapping.row_shift
    return [(0, 0, 1), (0, other_row, 1)]


class TestRuntimeInvariantChecker:
    def test_clean_engine_run_passes(self):
        config = SystemConfig(check_invariants=True)
        engine = ChannelEngine(
            device=config.device, freq_mhz=400.0, check_invariants=True
        )
        result = engine.run(_two_rows_same_bank(engine))
        assert result.chunks_read == 2

    def test_corrupted_trcd_is_caught(self):
        config = SystemConfig()
        engine = ChannelEngine(
            device=config.device, freq_mhz=400.0, check_invariants=True
        )
        faults.corrupt_engine_timing(engine, "t_rcd", -(engine.timing.t_rcd - 1))
        with pytest.raises(ProtocolError) as excinfo:
            engine.run(_two_rows_same_bank(engine))
        message = str(excinfo.value)
        assert "tRCD" in message
        # The offending command history rides along for post-mortem.
        assert "last" in message and "ACT" in message

    def test_corrupted_trp_is_caught(self):
        config = SystemConfig()
        engine = ChannelEngine(
            device=config.device, freq_mhz=400.0, check_invariants=True
        )
        # Alone, a zeroed tRP can hide behind the engine's separate
        # ACT-to-ACT (tRC) spacing; zero that too so the precharge
        # recovery itself is what the stream violates.
        faults.corrupt_engine_timing(engine, "t_rp", -engine.timing.t_rp)
        faults.corrupt_engine_timing(engine, "t_rc", -engine.timing.t_rc)
        with pytest.raises(ProtocolError, match="tRP"):
            engine.run(_two_rows_same_bank(engine))

    def test_disabled_checker_does_not_raise(self):
        config = SystemConfig()
        engine = ChannelEngine(device=config.device, freq_mhz=400.0)
        faults.corrupt_engine_timing(engine, "t_rcd", -(engine.timing.t_rcd - 1))
        engine.run(_two_rows_same_bank(engine))  # silent corruption

    def test_config_flag_reaches_the_engine(self):
        from repro.core.channel import Channel

        channel = Channel(SystemConfig(check_invariants=True))
        assert channel.engine.check_invariants

    def test_full_use_case_is_protocol_clean(self):
        from repro.analysis.sweep import simulate_use_case

        point = simulate_use_case(
            LEVEL,
            SystemConfig(channels=2, check_invariants=True),
            chunk_budget=BUDGET,
        )
        assert point.result.access_time_ms > 0

    def test_fig3_runner_is_protocol_clean(self):
        fig3 = run_fig3(
            frequencies_mhz=[200.0, 400.0],
            channel_counts=[1, 2],
            chunk_budget=BUDGET,
            base_config=SystemConfig(check_invariants=True),
        )
        assert fig3.format()
