"""Retry policy and the fault-tolerant parallel_map contract."""

import warnings

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.parallel import PoolFallbackWarning, parallel_map, pool_supported
from repro.resilience import (
    DEFAULT_RETRY_POLICY,
    NO_RETRY,
    JobFailure,
    RetryPolicy,
)
from repro.resilience import faults

needs_pool = pytest.mark.skipif(
    not pool_supported(), reason="platform cannot start worker processes"
)


class TestRetryPolicy:
    def test_default_schedule(self):
        assert DEFAULT_RETRY_POLICY.max_attempts == 3
        assert DEFAULT_RETRY_POLICY.delays() == (0.05, 0.1)

    def test_deterministic_exponential_delays(self):
        policy = RetryPolicy(max_attempts=5, initial_delay_s=0.01, multiplier=3.0)
        assert policy.delay_s(1) == 0.01
        assert policy.delay_s(2) == pytest.approx(0.03)
        assert policy.delay_s(3) == pytest.approx(0.09)
        # Jitterless: the same schedule every time.
        assert policy.delays() == policy.delays()

    def test_no_retry_has_empty_schedule(self):
        assert NO_RETRY.max_attempts == 1
        assert NO_RETRY.delays() == ()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(initial_delay_s=-0.1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigurationError):
            DEFAULT_RETRY_POLICY.delay_s(0)


def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError(f"bad input {x}")
    return x * x


def _crashable_square(x):
    faults.maybe_inject("retrytest", x)
    return x * x


class TestCaptureFailures:
    def test_serial_failure_propagates_by_default(self):
        with pytest.raises(ValueError, match="bad input 3"):
            parallel_map(_fail_on_three, [1, 2, 3, 4])

    def test_serial_capture_failures(self):
        out = parallel_map(_fail_on_three, [1, 2, 3, 4], capture_failures=True)
        assert out[0] == 1 and out[1] == 4 and out[3] == 16
        failure = out[2]
        assert isinstance(failure, JobFailure)
        assert failure.index == 2
        assert failure.error_type == "ValueError"
        assert "bad input 3" in failure.message
        assert "ValueError" in failure.traceback

    @needs_pool
    def test_pooled_capture_failures(self):
        out = parallel_map(
            _fail_on_three, [1, 2, 3, 4], workers=2, capture_failures=True
        )
        assert [o for o in out if not isinstance(o, JobFailure)] == [1, 4, 16]
        failure = out[2]
        assert isinstance(failure, JobFailure)
        assert failure.error_type == "ValueError"

    @needs_pool
    def test_pooled_failure_propagates_by_default(self):
        with pytest.raises(ValueError, match="bad input 3"):
            parallel_map(_fail_on_three, [1, 2, 3, 4], workers=2)

    def test_failure_describe_names_job(self):
        out = parallel_map(_fail_on_three, [3], capture_failures=True)
        assert "job 0" in out[0].describe()
        assert "ValueError" in out[0].describe()


class TestOnResult:
    def test_serial_on_result_in_order(self):
        seen = []
        parallel_map(
            _square, [1, 2, 3], on_result=lambda i, v: seen.append((i, v))
        )
        assert seen == [(0, 1), (1, 4), (2, 9)]

    def test_on_result_skips_failures(self):
        seen = []
        parallel_map(
            _fail_on_three,
            [1, 3],
            capture_failures=True,
            on_result=lambda i, v: seen.append(i),
        )
        assert seen == [0]

    @needs_pool
    def test_pooled_on_result_covers_every_success(self):
        seen = {}
        out = parallel_map(
            _square, [1, 2, 3, 4], workers=2, on_result=seen.__setitem__
        )
        assert out == [1, 4, 9, 16]
        assert seen == {0: 1, 1: 4, 2: 9, 3: 16}


class TestFallbackWarning:
    def test_unpicklable_function_warns_with_reason(self):
        with pytest.warns(PoolFallbackWarning, match="process boundary"):
            out = parallel_map(lambda x: x + 1, [1, 2, 3], workers=2)
        assert out == [2, 3, 4]

    def test_serial_path_never_warns(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", PoolFallbackWarning)
            assert parallel_map(_square, [1, 2, 3]) == [1, 4, 9]


class TestCrashRecovery:
    """A killed worker (BrokenProcessPool) must never lose work."""

    @needs_pool
    def test_worker_crash_retries_on_fresh_pool(self, tmp_path):
        plan = faults.FaultPlan(
            site="retrytest",
            index=2,
            mode="crash",
            once=True,
            marker_path=str(tmp_path / "crash.marker"),
        )
        fast = RetryPolicy(max_attempts=3, initial_delay_s=0.0)
        with faults.injected(plan):
            out = parallel_map(
                _crashable_square, [1, 2, 3, 4], workers=2, retry=fast
            )
        # The crash killed a pool attempt, the marker disarmed the
        # fault, and the retry completed every job -- no lost work, no
        # spurious failure records.
        assert out == [1, 4, 9, 16]
        assert (tmp_path / "crash.marker").exists()

    @needs_pool
    def test_exhausted_retries_fall_back_in_process(self, tmp_path):
        # A crash on every pool attempt (marker armed per attempt would
        # re-fire, so arm one crash but allow only one pool attempt):
        # after the budget, the in-process fallback finishes the work.
        plan = faults.FaultPlan(
            site="retrytest",
            index=1,
            mode="crash",
            once=True,
            marker_path=str(tmp_path / "crash2.marker"),
        )
        with faults.injected(plan):
            with pytest.warns(PoolFallbackWarning, match="in-process"):
                out = parallel_map(
                    _crashable_square, [1, 2, 3], workers=2, retry=NO_RETRY
                )
        assert out == [1, 4, 9]
