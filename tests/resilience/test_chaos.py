"""Chaos campaign and torn-checkpoint-write injection.

The campaign's promise is compositional: crash + stall + torn-write
recovery, stacked in random seeded order, must still converge to a
sweep bit-identical to the fault-free baseline.  The unit tests here
pin the torn-write mechanics the campaign leans on; the campaign test
runs one real seed end to end.
"""

import random

import pytest

from repro.parallel import pool_supported
from repro.resilience.chaos import (
    CHAOS_FAULT_MODES,
    DEFAULT_CHAOS_SEEDS,
    ChaosReport,
    ChaosRun,
    _draw_fault,
    run_chaos_campaign,
)
from repro.resilience.checkpoint import CheckpointWarning, SweepCheckpoint
from repro.resilience.faults import FaultPlan, TornWriteInjected, injected

needs_pool = pytest.mark.skipif(
    not pool_supported(), reason="process pool unavailable on this platform"
)

BUDGET = 2000


class TestTornWriteInjection:
    def test_targeted_append_is_torn_and_raises(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        ckpt = SweepCheckpoint(path)
        ckpt.record("k0", {"index": 0}, "payload-0")
        plan = FaultPlan(
            site="checkpoint", index=1, mode="torn-write", once=False
        )
        with injected(plan):
            with pytest.raises(TornWriteInjected, match="append #1"):
                ckpt.record("k1", {"index": 1}, "payload-1")
        # The file ends mid-line, exactly like a process killed
        # mid-append; the completed record before it is untouched.
        assert not path.read_bytes().endswith(b"\n")
        fresh = SweepCheckpoint(path)
        with pytest.warns(CheckpointWarning, match="skipped 1"):
            assert fresh.load() == {"k0": "payload-0"}

    def test_next_append_repairs_the_torn_tail(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        plan = FaultPlan(
            site="checkpoint", index=0, mode="torn-write", once=False
        )
        with injected(plan):
            with pytest.raises(TornWriteInjected):
                SweepCheckpoint(path).record("k0", {}, "payload-0")
        # A fresh instance models the resumed process: its first append
        # must terminate the debris so the records cannot fuse.
        resumed = SweepCheckpoint(path)
        resumed.record("k0", {}, "payload-0")
        resumed.record("k1", {}, "payload-1")
        with pytest.warns(CheckpointWarning, match="skipped 1"):
            done = SweepCheckpoint(path).load()
        assert done == {"k0": "payload-0", "k1": "payload-1"}

    def test_one_shot_plan_fires_exactly_once(self, tmp_path):
        # The chaos campaign arms one-shot plans: the torn write fires
        # on the first targeted append and never again -- not even in
        # the resumed "process" (fresh instance, seq back at 0) that
        # retries the same append while the plan is still armed.
        path = tmp_path / "sweep.ckpt"
        plan = FaultPlan(
            site="checkpoint",
            index=0,
            mode="torn-write",
            once=True,
            marker_path=str(tmp_path / "fault.marker"),
        )
        with injected(plan):
            with pytest.raises(TornWriteInjected):
                SweepCheckpoint(path).record("k0", {}, "payload-0")
            resumed = SweepCheckpoint(path)
            resumed.record("k0", {}, "payload-0")
        with pytest.warns(CheckpointWarning):
            assert SweepCheckpoint(path).load() == {"k0": "payload-0"}


class TestFaultDraw:
    def test_draw_is_seed_deterministic(self, tmp_path):
        # CI reproducibility hinges on this: the same seed must draw
        # the same fault sequence on any machine.
        draws_a = [
            _draw_fault(rng_a, 6, str(tmp_path), i)
            for rng_a in [random.Random(7)]
            for i in range(8)
        ]
        draws_b = [
            _draw_fault(rng_b, 6, str(tmp_path), i)
            for rng_b in [random.Random(7)]
            for i in range(8)
        ]
        assert [
            (p.mode, p.site, p.index) for p in draws_a
        ] == [(p.mode, p.site, p.index) for p in draws_b]

    def test_draws_are_one_shot_and_well_aimed(self, tmp_path):
        rng = random.Random(3)
        for serial in range(16):
            plan = _draw_fault(rng, 5, str(tmp_path), serial)
            assert plan.once
            assert plan.mode in CHAOS_FAULT_MODES
            assert plan.mode != "raise"
            expected_site = (
                "checkpoint" if plan.mode == "torn-write" else "sweep"
            )
            assert plan.site == expected_site
            assert 0 <= plan.index < 5


class TestCampaignReporting:
    def test_run_requires_identity_and_zero_residuals(self):
        assert ChaosRun(seed=1, identical=True).ok
        assert not ChaosRun(seed=1, identical=False).ok
        assert not ChaosRun(seed=1, identical=True, residual_failures=1).ok

    def test_failing_report_names_the_reproducing_seed(self):
        good = ChaosRun(seed=1, attempts=1, identical=True)
        bad = ChaosRun(seed=9, attempts=2, identical=False)
        report = ChaosReport(runs=[good, bad], points=3)
        assert not report.passed
        assert report.first_failure is bad
        text = report.format()
        assert "repro chaos --seeds 9" in text
        assert "FAIL" in text

    def test_passing_report_says_so(self):
        report = ChaosReport(
            runs=[ChaosRun(seed=s, attempts=1, identical=True) for s in (1, 5)],
            points=3,
        )
        assert report.passed
        assert "PASS" in report.format()

    def test_default_seeds_are_the_ci_triple(self):
        assert DEFAULT_CHAOS_SEEDS == (1, 5, 17)


@needs_pool
class TestCampaign:
    def test_single_seed_campaign_converges_bit_identically(self):
        report = run_chaos_campaign(
            seeds=(5,), chunk_budget=BUDGET, point_timeout=15.0
        )
        assert report.passed
        assert report.points == 3
        run = report.runs[0]
        assert run.ok
        assert run.attempts >= 1
        assert run.faults, "every attempt arms a fault"
        assert run.residual_failures == 0
