"""Checkpoint store and sweep resume semantics."""

import json
import os

import pytest

import repro.analysis.sweep as sweep_mod
from repro.analysis.sweep import simulate_use_case, sweep_use_case
from repro.core.config import SystemConfig
from repro.errors import CheckpointError
from repro.resilience import SweepCheckpoint
from repro.resilience.checkpoint import CHECKPOINT_VERSION, CheckpointWarning
from repro.usecase.levels import level_by_name

BUDGET = 2000
LEVEL = level_by_name("3.1")
CONFIGS = [SystemConfig(channels=m) for m in (1, 2, 4)]


class TestStore:
    def test_missing_file_loads_empty(self, tmp_path):
        store = SweepCheckpoint(tmp_path / "none.ckpt")
        assert store.load() == {}
        assert len(store) == 0

    def test_round_trip(self, tmp_path):
        store = SweepCheckpoint(tmp_path / "s.ckpt")
        key = store.key_for(("job", 1))
        store.record(key, {"index": 1}, {"value": [1.5, "x"]})
        assert store.load() == {key: {"value": [1.5, "x"]}}
        assert len(store) == 1

    def test_key_is_stable_and_distinct(self):
        job_a = (0, LEVEL, CONFIGS[0], None, BUDGET, 64)
        job_b = (1, LEVEL, CONFIGS[1], None, BUDGET, 64)
        assert SweepCheckpoint.key_for(job_a) == SweepCheckpoint.key_for(job_a)
        assert SweepCheckpoint.key_for(job_a) != SweepCheckpoint.key_for(job_b)

    def test_truncated_tail_is_skipped_with_warning(self, tmp_path):
        path = tmp_path / "t.ckpt"
        store = SweepCheckpoint(path)
        key = store.key_for("good")
        store.record(key, {}, 42)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"v": 1, "key": "dead", "da')  # killed mid-write
        with pytest.warns(CheckpointWarning, match="recomputed"):
            done = store.load()
        assert done == {key: 42}

    def test_undecodable_payload_is_skipped(self, tmp_path):
        path = tmp_path / "p.ckpt"
        line = json.dumps(
            {"v": CHECKPOINT_VERSION, "key": "k", "coords": {}, "data": "!!!"}
        )
        path.write_text(line + "\n")
        with pytest.warns(CheckpointWarning):
            assert SweepCheckpoint(path).load() == {}

    def test_unknown_version_on_final_line_is_skipped(self, tmp_path):
        # A line torn mid-write can still parse as JSON with a mangled
        # version field, so the *final* line gets the same benefit of
        # the doubt as a truncated one: skipped and recomputed, not a
        # resume-poisoning error.
        path = tmp_path / "v.ckpt"
        store = SweepCheckpoint(path)
        key = store.key_for("good")
        store.record(key, {}, 42)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({"v": 99, "key": "k", "data": ""}) + "\n")
        with pytest.warns(CheckpointWarning, match="recomputed"):
            assert store.load() == {key: 42}

    def test_unknown_version_as_only_line_is_skipped(self, tmp_path):
        path = tmp_path / "v.ckpt"
        path.write_text(json.dumps({"v": 99, "key": "k", "data": ""}) + "\n")
        with pytest.warns(CheckpointWarning):
            assert SweepCheckpoint(path).load() == {}

    def test_unknown_version_on_interior_line_raises(self, tmp_path):
        # An interior line with a foreign version is a format mismatch,
        # not damage: a valid line *after* it proves the file was not
        # torn there.  The error reports what a manual truncation would
        # preserve.
        path = tmp_path / "v.ckpt"
        store = SweepCheckpoint(path)
        store.record(store.key_for("a"), {}, 1)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({"v": 99, "key": "k", "data": ""}) + "\n")
        store.record(store.key_for("b"), {}, 2)
        with pytest.raises(
            CheckpointError, match=r"version.*1 valid point\(s\) precede"
        ):
            store.load()

    def test_v1_interior_line_raises_migration_error(self, tmp_path):
        # Version-1 entries were keyed by sha256(repr(job)), which
        # omits the backend and engine version; silently resuming from
        # one could alias a stale result, so a v1 line that is provably
        # not torn (a valid line follows it) must refuse loudly and
        # explain the migration.
        path = tmp_path / "old.ckpt"
        store = SweepCheckpoint(path)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(
                json.dumps({"v": 1, "key": "deadbeef", "data": ""}) + "\n"
            )
        store.record(store.key_for("fresh"), {}, 1)
        with pytest.raises(
            CheckpointError, match=r"sha256\(repr\(job\)\).*--resume"
        ) as excinfo:
            store.load()
        assert "backend" in str(excinfo.value)

    def test_foreign_json_raises(self, tmp_path):
        path = tmp_path / "f.ckpt"
        path.write_text('{"not": "a checkpoint"}\n')
        with pytest.raises(CheckpointError, match="not a checkpoint entry"):
            SweepCheckpoint(path).load()

    def test_clear_removes_file(self, tmp_path):
        path = tmp_path / "c.ckpt"
        store = SweepCheckpoint(path)
        store.record(store.key_for("x"), {}, 1)
        assert path.exists()
        store.clear()
        assert not path.exists()
        store.clear()  # idempotent

    def test_unpicklable_result_raises(self, tmp_path):
        store = SweepCheckpoint(tmp_path / "u.ckpt")
        with pytest.raises(CheckpointError, match="not picklable"):
            store.record("k", {"index": 0}, lambda: None)


class TestDurability:
    """``fsync=True`` makes every append machine-crash durable."""

    def test_fsync_flag_syncs_every_append(self, tmp_path, monkeypatch):
        import repro.resilience.checkpoint as ckpt_mod

        synced = []
        real_fsync = os.fsync

        def counting_fsync(fd):
            synced.append(fd)
            return real_fsync(fd)

        monkeypatch.setattr(ckpt_mod.os, "fsync", counting_fsync)
        durable = SweepCheckpoint(tmp_path / "d.ckpt", fsync=True)
        durable.record(durable.key_for("a"), {}, 1)
        durable.record(durable.key_for("b"), {}, 2)
        assert len(synced) == 2

    def test_default_append_does_not_fsync(self, tmp_path, monkeypatch):
        import repro.resilience.checkpoint as ckpt_mod

        def forbidden(fd):
            raise AssertionError("default append must not fsync")

        monkeypatch.setattr(ckpt_mod.os, "fsync", forbidden)
        plain = SweepCheckpoint(tmp_path / "p.ckpt")
        plain.record(plain.key_for("a"), {}, 1)
        assert plain.load() == {plain.key_for("a"): 1}


class TestLen:
    """``len(store)`` counts structurally valid lines *without*
    decoding their payloads -- regression for the resume banner that
    decompressed and unpickled every point just to print a count."""

    def test_counts_large_checkpoint_without_decoding(
        self, tmp_path, monkeypatch
    ):
        import repro.resilience.checkpoint as ckpt_mod

        n_points = 500
        store = SweepCheckpoint(tmp_path / "big.ckpt")
        for index in range(n_points):
            store.record(
                store.key_for(("job", index)),
                {"index": index},
                {"payload": list(range(50))},
            )

        def forbidden(*args, **kwargs):
            raise AssertionError("__len__ must not decode payloads")

        # Any attempt to touch a payload blows up the count.
        monkeypatch.setattr(ckpt_mod.pickle, "loads", forbidden)
        monkeypatch.setattr(ckpt_mod.zlib, "decompress", forbidden)
        monkeypatch.setattr(ckpt_mod.base64, "b64decode", forbidden)
        assert len(store) == n_points

    def test_skips_structurally_invalid_lines(self, tmp_path):
        path = tmp_path / "mixed.ckpt"
        store = SweepCheckpoint(path)
        store.record(store.key_for("good"), {}, 42)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"v": 1, "key": "dead", "da\n')  # truncated
            handle.write("\n")  # blank
            handle.write(json.dumps({"v": 1, "key": "no-data"}) + "\n")
            handle.write(
                json.dumps({"v": 99, "key": "k", "data": "x"}) + "\n"
            )  # foreign version
        assert len(store) == 1

    def test_matches_load_on_clean_files(self, tmp_path):
        store = SweepCheckpoint(tmp_path / "clean.ckpt")
        for index in range(7):
            store.record(store.key_for(index), {"index": index}, index)
        assert len(store) == len(store.load()) == 7


class TestSweepResume:
    def test_checkpoint_records_points_as_they_finish(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        report = sweep_use_case(
            [LEVEL], CONFIGS, chunk_budget=BUDGET, checkpoint=path
        )
        assert report.ok and report.resumed == 0
        assert len(SweepCheckpoint(path)) == len(CONFIGS)
        # Coordinates are greppable plain JSON.
        coords = [
            json.loads(line)["coords"]
            for line in path.read_text().splitlines()
        ]
        assert {c["channels"] for c in coords} == {1, 2, 4}

    def test_resume_skips_completed_points(self, tmp_path, monkeypatch):
        path = tmp_path / "sweep.ckpt"
        first = sweep_use_case(
            [LEVEL], CONFIGS, chunk_budget=BUDGET, checkpoint=path
        )

        calls = []
        real = simulate_use_case

        def counting(*a, **kw):
            calls.append(a)
            return real(*a, **kw)

        monkeypatch.setattr(sweep_mod, "simulate_use_case", counting)
        second = sweep_use_case(
            [LEVEL], CONFIGS, chunk_budget=BUDGET, checkpoint=path
        )
        assert calls == []  # nothing recomputed
        assert second.resumed == len(CONFIGS)
        assert list(second) == list(first)

    def test_partial_checkpoint_recomputes_only_missing(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "sweep.ckpt"
        sweep_use_case([LEVEL], CONFIGS, chunk_budget=BUDGET, checkpoint=path)

        # Drop the middle point from the checkpoint, as if the run had
        # been interrupted before writing it.
        lines = path.read_text().splitlines()
        path.write_text("\n".join([lines[0], lines[2]]) + "\n")

        calls = []
        real = simulate_use_case

        def counting(*a, **kw):
            calls.append(a)
            return real(*a, **kw)

        monkeypatch.setattr(sweep_mod, "simulate_use_case", counting)
        resumed = sweep_use_case(
            [LEVEL], CONFIGS, chunk_budget=BUDGET, checkpoint=path
        )
        assert len(calls) == 1  # exactly the missing point
        assert resumed.resumed == 2

        # Bit-identical to an uninterrupted sequential sweep.
        fresh = sweep_use_case([LEVEL], CONFIGS, chunk_budget=BUDGET)
        assert list(resumed) == list(fresh)

    def test_changed_parameters_share_nothing(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        sweep_use_case([LEVEL], CONFIGS, chunk_budget=BUDGET, checkpoint=path)
        # A different budget is a different job: nothing resumes.
        report = sweep_use_case(
            [LEVEL], CONFIGS, chunk_budget=BUDGET * 2, checkpoint=path
        )
        assert report.resumed == 0

    def test_durable_checkpoint_fsyncs_each_point(self, tmp_path, monkeypatch):
        import repro.resilience.checkpoint as ckpt_mod

        synced = []
        real_fsync = os.fsync

        def counting_fsync(fd):
            synced.append(fd)
            return real_fsync(fd)

        monkeypatch.setattr(ckpt_mod.os, "fsync", counting_fsync)
        path = tmp_path / "sweep.ckpt"
        report = sweep_use_case(
            [LEVEL],
            CONFIGS,
            chunk_budget=BUDGET,
            checkpoint=path,
            durable_checkpoint=True,
        )
        assert report.ok
        assert len(synced) == len(CONFIGS)
        # Durability changes when bytes hit the platter, never what
        # they say.
        fresh = sweep_use_case([LEVEL], CONFIGS, chunk_budget=BUDGET)
        assert list(report) == list(fresh)

    def test_prepared_store_honours_durable_flag(self, tmp_path):
        store = SweepCheckpoint(tmp_path / "sweep.ckpt")
        assert not store.fsync
        sweep_use_case(
            [LEVEL],
            CONFIGS,
            chunk_budget=BUDGET,
            checkpoint=store,
            durable_checkpoint=True,
        )
        assert store.fsync

    def test_sweep_without_checkpoint_is_unchanged(self):
        report = sweep_use_case([LEVEL], CONFIGS, chunk_budget=BUDGET)
        assert report.ok
        assert report.resumed == 0
        assert [p.config.channels for p in report] == [1, 2, 4]
