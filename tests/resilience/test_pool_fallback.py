"""Every in-process fallback reason yields identical results.

``parallel_map`` promises that abandoning the pool never changes the
answer -- only a :class:`~repro.parallel.PoolFallbackWarning` tells
the caller parallelism was lost.  The three documented fallback
reasons are pinned here, each against real simulations parametrized
over all four backends:

- the mapped function cannot cross the process boundary (a lambda);
- the job items cannot cross the process boundary;
- the pool itself fails to start (``OSError`` from the executor).
"""

import importlib.util
import pickle

import pytest

import repro.parallel as parallel_mod
from repro.analysis.sweep import simulate_use_case
from repro.core.config import SystemConfig
from repro.parallel import PoolFallbackWarning, parallel_map
from repro.resilience.retry import NO_RETRY
from repro.usecase.levels import level_by_name

needs_numpy = pytest.mark.skipif(
    importlib.util.find_spec("numpy") is None,
    reason="batch backend needs the numpy optional extra",
)

ALL_BACKENDS = [
    "reference",
    "fast",
    pytest.param("batch", marks=needs_numpy),
    "analytic",
]

BUDGET = 2000
LEVEL = level_by_name("3.1")


def _point(config):
    return simulate_use_case(LEVEL, config, chunk_budget=BUDGET)


class UnpicklableConfig(SystemConfig):
    """A config that refuses to cross the process boundary."""

    def __reduce__(self):
        raise pickle.PicklingError("deliberately unpicklable test config")


def _configs(backend, cls=SystemConfig):
    return [cls(channels=m, backend=backend) for m in (1, 2)]


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_unpicklable_function_falls_back_identically(backend):
    configs = _configs(backend)
    baseline = [_point(config) for config in configs]
    unpicklable_fn = lambda config: _point(config)  # noqa: E731
    with pytest.warns(
        PoolFallbackWarning, match="cannot cross the process boundary"
    ):
        out = parallel_map(unpicklable_fn, configs, workers=2)
    assert out == baseline


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_unpicklable_items_fall_back_identically(backend):
    configs = _configs(backend, cls=UnpicklableConfig)
    baseline = [_point(config) for config in configs]
    with pytest.warns(PoolFallbackWarning, match="PicklingError"):
        out = parallel_map(_point, configs, workers=2, retry=NO_RETRY)
    assert out == baseline


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_pool_start_failure_falls_back_identically(backend, monkeypatch):
    def _broken_pool(*args, **kwargs):
        raise OSError("pool start refused (test)")

    monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", _broken_pool)
    configs = _configs(backend)
    baseline = [_point(config) for config in configs]
    with pytest.warns(PoolFallbackWarning, match="OSError"):
        out = parallel_map(_point, configs, workers=2, retry=NO_RETRY)
    assert out == baseline
