"""Watchdog supervision: deadlines, hang detection, quarantine.

The contract under test (docs/architecture.md, "Supervision & chaos"):
a supervised job that hangs past its wall-clock deadline has its
worker killed and is requeued; a job that hangs (or kills its worker)
on every permitted attempt is quarantined instead of stalling the map
forever; every other job is unaffected and the sweep's ERR-cell /
``strict=`` semantics fold quarantines in like any other failure.
"""

import os
import time

import pytest

from repro.analysis.sweep import sweep_use_case
from repro.core.config import SystemConfig
from repro.errors import ConfigurationError, JobTimeoutError, WorkerError
from repro.parallel import parallel_map, pool_supported
from repro.resilience import SweepCheckpoint
from repro.resilience.faults import CRASH_EXIT_CODE, FaultPlan, injected
from repro.resilience.report import (
    FAILURE_KIND_QUARANTINED,
    FAILURE_KIND_TIMEOUT,
    JobFailure,
)
from repro.resilience.retry import RetryPolicy
from repro.resilience.supervisor import Watchdog
from repro.telemetry.session import Telemetry
from repro.usecase.levels import level_by_name

needs_pool = pytest.mark.skipif(
    not pool_supported(), reason="process pool unavailable on this platform"
)

BUDGET = 2000
LEVEL = level_by_name("3.1")
CONFIGS = [SystemConfig(channels=m) for m in (1, 2, 4)]

#: Deadline used by the map-level tests; short for fast tests, long
#: enough that an honest job (a multiplication) can never trip it.
DEADLINE_S = 0.6

#: Generous wall-clock ceiling: even a loaded CI machine must resolve
#: a permanent hang within the strike budget's worth of deadlines.
BOUNDED_S = 60.0


def _square(x):
    return x * x


def _hang_on_three(x):
    """Permanent hang on job value 3; instant everywhere else."""
    if x == 3:
        while True:
            time.sleep(0.05)
    return x * x


def _hang_once(arg):
    """Hang on the first attempt only (marker claimed before hanging)."""
    value, sentinel, marker = arg
    if value == sentinel and not os.path.exists(marker):
        with open(marker, "w"):
            pass
        while True:
            time.sleep(0.05)
    return value * value


def _crash_on_two(x):
    """Kill the worker on job value 2, after letting innocents finish."""
    if x == 2:
        time.sleep(0.3)
        os._exit(CRASH_EXIT_CODE)
    return x * x


class TestWatchdogPolicy:
    @pytest.mark.parametrize("bad", [0, -1.0])
    def test_timeout_must_be_positive(self, bad):
        with pytest.raises(ConfigurationError, match="timeout_s"):
            Watchdog(bad)

    def test_strikes_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="max_strikes"):
            Watchdog(1.0, max_strikes=0)

    def test_poll_interval_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="poll_interval_s"):
            Watchdog(1.0, poll_interval_s=0)

    def test_strike_budget_defaults_to_retry_attempts(self):
        retry = RetryPolicy(max_attempts=5)
        assert Watchdog(1.0).strike_budget(retry) == 5
        assert Watchdog(1.0, max_strikes=2).strike_budget(retry) == 2

    def test_poll_interval_tracks_short_deadlines(self):
        # A 0.1 s deadline polled every 50 ms would overshoot by half
        # the budget; the cadence tightens to a quarter deadline.
        assert Watchdog(0.1).poll_interval_s == pytest.approx(0.025)

    def test_conflicting_timeout_and_watchdog_rejected(self):
        with pytest.raises(ConfigurationError, match="not conflicting both"):
            parallel_map(
                _square, [1], timeout_s=1.0, watchdog=Watchdog(2.0)
            )

    def test_matching_timeout_and_watchdog_accepted(self):
        dog = Watchdog(30.0)
        assert parallel_map(
            _square, [2], workers=1, timeout_s=30.0, watchdog=dog
        ) == [4]


@needs_pool
class TestHangDetection:
    def test_permanent_hang_is_quarantined_not_fatal(self):
        start = time.monotonic()
        out = parallel_map(
            _hang_on_three,
            range(6),
            workers=2,
            timeout_s=DEADLINE_S,
            capture_failures=True,
        )
        elapsed = time.monotonic() - start
        assert elapsed < BOUNDED_S
        failure = out[3]
        assert isinstance(failure, JobFailure)
        assert failure.kind == FAILURE_KIND_TIMEOUT
        assert failure.quarantined
        assert failure.error_type == "JobTimeoutError"
        # Every other job is untouched.
        assert [out[i] for i in (0, 1, 2, 4, 5)] == [0, 1, 4, 16, 25]

    def test_permanent_hang_raises_without_capture(self):
        with pytest.raises(JobTimeoutError, match="quarantined"):
            parallel_map(
                _hang_on_three, range(6), workers=2, timeout_s=DEADLINE_S
            )

    def test_transient_hang_recovers_without_quarantine(self, tmp_path):
        # The job hangs exactly once (the marker claims the hang); the
        # watchdog kill plus requeue must recover the full result set
        # with no failure records at all.
        marker = str(tmp_path / "hung-once.marker")
        dog = Watchdog(DEADLINE_S)
        jobs = [(value, 2, marker) for value in range(4)]
        out = parallel_map(
            _hang_once, jobs, workers=2, watchdog=dog, capture_failures=True
        )
        assert out == [0, 1, 4, 9]
        assert dog.kills >= 1
        assert dog.quarantined == 0

    def test_watchdog_statistics_accumulate(self):
        dog = Watchdog(DEADLINE_S)
        parallel_map(
            _hang_on_three,
            range(4),
            workers=2,
            watchdog=dog,
            capture_failures=True,
        )
        budget = dog.strike_budget(RetryPolicy())
        assert dog.timeouts == budget
        assert dog.kills == budget
        assert dog.quarantined == 1

    def test_supervision_forces_pool_for_serial_request(self):
        # workers=None normally means in-process, where a hang could
        # never be preempted; a deadline must force a pool of one.
        out = parallel_map(
            _hang_on_three,
            [1, 3],
            workers=None,
            timeout_s=DEADLINE_S,
            capture_failures=True,
        )
        assert out[0] == 1
        assert isinstance(out[1], JobFailure)

    def test_unsupervised_map_is_unchanged(self):
        assert parallel_map(_square, range(8), workers=2) == [
            n * n for n in range(8)
        ]


@needs_pool
class TestCrasherQuarantine:
    def test_permanent_crasher_is_quarantined_before_fallback(self):
        # A job that kills its worker on every attempt must be written
        # off by the supervisor -- if it ever reached the in-process
        # fallback its os._exit would take down the test process.
        out = parallel_map(
            _crash_on_two,
            range(4),
            workers=2,
            timeout_s=30.0,
            capture_failures=True,
        )
        failure = out[2]
        assert isinstance(failure, JobFailure)
        assert failure.kind == FAILURE_KIND_QUARANTINED
        assert failure.quarantined
        assert [out[i] for i in (0, 1, 3)] == [0, 1, 9]


@needs_pool
class TestSupervisedSweep:
    def test_stalled_point_becomes_err_cell_within_bounded_time(self):
        plan = FaultPlan(site="sweep", index=1, mode="stall", once=False)
        start = time.monotonic()
        with injected(plan):
            report = sweep_use_case(
                [LEVEL],
                CONFIGS,
                chunk_budget=BUDGET,
                workers=2,
                strict=False,
                point_timeout=1.0,
            )
        assert time.monotonic() - start < BOUNDED_S
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert failure.kind == FAILURE_KIND_TIMEOUT
        assert failure.coords["index"] == 1
        assert failure.coords["channels"] == 2
        # Exactly the other two points complete, bit-identical to a
        # fault-free sweep of the same configurations.
        clean = sweep_use_case(
            [LEVEL], [CONFIGS[0], CONFIGS[2]], chunk_budget=BUDGET
        )
        assert list(report) == list(clean)

    def test_stalled_point_strict_raises_naming_the_point(self):
        plan = FaultPlan(site="sweep", index=1, mode="stall", once=False)
        with injected(plan):
            with pytest.raises(WorkerError, match="channels': 2") as excinfo:
                sweep_use_case(
                    [LEVEL],
                    CONFIGS,
                    chunk_budget=BUDGET,
                    workers=2,
                    strict=True,
                    point_timeout=1.0,
                )
        assert excinfo.value.coords["index"] == 1

    def test_quarantine_is_recorded_and_resume_does_not_rehang(
        self, tmp_path
    ):
        path = tmp_path / "sweep.ckpt"
        plan = FaultPlan(site="sweep", index=1, mode="stall", once=False)
        with injected(plan):
            first = sweep_use_case(
                [LEVEL],
                CONFIGS,
                chunk_budget=BUDGET,
                workers=2,
                strict=False,
                checkpoint=path,
                point_timeout=1.0,
            )
        assert len(first.failures) == 1
        # Resume with the stall STILL armed: the checkpointed
        # quarantine must be honoured instead of re-hanging.
        start = time.monotonic()
        with injected(plan):
            again = sweep_use_case(
                [LEVEL],
                CONFIGS,
                chunk_budget=BUDGET,
                workers=2,
                strict=False,
                checkpoint=path,
                point_timeout=1.0,
            )
        assert time.monotonic() - start < 5.0
        assert again.resumed == len(CONFIGS)
        assert list(again) == list(first)
        assert len(again.failures) == 1
        assert again.failures[0].kind == FAILURE_KIND_TIMEOUT
        assert again.failures[0].coords == first.failures[0].coords

    def test_resumed_quarantine_still_raises_in_strict_mode(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        plan = FaultPlan(site="sweep", index=1, mode="stall", once=False)
        with injected(plan):
            sweep_use_case(
                [LEVEL],
                CONFIGS,
                chunk_budget=BUDGET,
                workers=2,
                strict=False,
                checkpoint=path,
                point_timeout=1.0,
            )
        with pytest.raises(WorkerError, match="channels': 2"):
            sweep_use_case(
                [LEVEL],
                CONFIGS,
                chunk_budget=BUDGET,
                workers=2,
                strict=True,
                checkpoint=path,
                point_timeout=1.0,
            )

    def test_supervision_counters_reach_telemetry(self):
        plan = FaultPlan(site="sweep", index=0, mode="stall", once=False)
        telemetry = Telemetry()
        with injected(plan):
            sweep_use_case(
                [LEVEL],
                CONFIGS,
                chunk_budget=BUDGET,
                workers=2,
                strict=False,
                point_timeout=1.0,
                telemetry=telemetry,
            )
        registry = telemetry.registry
        assert registry.counter("sweep.timeouts").value >= 1
        assert registry.counter("sweep.watchdog_kills").value >= 1
        assert registry.counter("sweep.quarantined").value == 1

    def test_clean_supervised_sweep_exports_zeroed_counters(self):
        telemetry = Telemetry()
        report = sweep_use_case(
            [LEVEL],
            CONFIGS,
            chunk_budget=BUDGET,
            workers=2,
            point_timeout=60.0,
            telemetry=telemetry,
        )
        assert report.ok
        counters = telemetry.registry.as_dict()["counters"]
        assert counters["sweep.timeouts"] == 0
        assert counters["sweep.watchdog_kills"] == 0
        assert counters["sweep.quarantined"] == 0

    def test_supervised_sweep_matches_unsupervised(self):
        supervised = sweep_use_case(
            [LEVEL], CONFIGS, chunk_budget=BUDGET, workers=2,
            point_timeout=60.0,
        )
        plain = sweep_use_case([LEVEL], CONFIGS, chunk_budget=BUDGET)
        assert list(supervised) == list(plain)


class TestQuarantineRecords:
    def test_from_quarantine_truncates_item_repr(self):
        failure = JobFailure.from_quarantine(
            3, "x" * 500, kind=FAILURE_KIND_TIMEOUT, message="hung"
        )
        assert len(failure.item) == 200
        assert failure.item.endswith("...")

    def test_describe_tags_non_error_kinds(self):
        timeout = JobFailure.from_quarantine(
            0, "item", kind=FAILURE_KIND_TIMEOUT, message="hung"
        )
        assert "(timeout)" in timeout.describe()
        plain = JobFailure.from_exception(0, "item", ValueError("x"))
        assert "(" not in plain.describe().split("]")[1].split(":")[0]

    def test_plain_failures_are_not_quarantined(self):
        plain = JobFailure.from_exception(0, "item", ValueError("x"))
        assert not plain.quarantined
