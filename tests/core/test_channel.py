"""Tests for the channel wrapper (controller + interconnect + cluster)."""

import pytest

from repro.core.channel import Channel
from repro.core.config import SystemConfig


class TestChannel:
    def test_run_produces_result(self):
        channel = Channel(SystemConfig(channels=1))
        result = channel.run([(0, 0, 16)])
        assert result.total_chunks == 16
        assert result.finish_cycle > 0

    def test_energy_of_result(self):
        channel = Channel(SystemConfig(channels=1))
        result = channel.run([(0, 0, 256)])
        energy = channel.energy_of(result)
        assert energy.total_j > 0
        assert energy.read_j > 0
        assert energy.write_j == 0

    def test_energy_scales_with_traffic(self):
        channel = Channel(SystemConfig(channels=1))
        small = channel.energy_of(channel.run([(0, 0, 100)]))
        large = channel.energy_of(channel.run([(0, 0, 1000)]))
        assert large.read_j == pytest.approx(10 * small.read_j)

    def test_peak_bandwidth(self):
        channel = Channel(SystemConfig(channels=1, freq_mhz=400.0))
        assert channel.peak_bandwidth_bytes_per_s == pytest.approx(3.2e9)

    def test_index_stored(self):
        assert Channel(SystemConfig(channels=4), index=3).index == 3
