"""Tests for simulation result containers."""

import pytest

from repro.controller.engine import ChannelResult
from repro.core.results import SimulationResult
from repro.dram.commands import CommandCounters, StateDurations
from repro.errors import ConfigurationError


def make_channel(finish=1000, data=800, reads=400, writes=0, freq=400.0):
    return ChannelResult(
        finish_cycle=finish,
        freq_mhz=freq,
        data_cycles=data,
        chunks_read=reads,
        chunks_written=writes,
        counters=CommandCounters(reads=reads, writes=writes, activates=4),
        states=StateDurations(active_standby_ns=finish * 2.5),
    )


class TestChannelResult:
    def test_finish_ns(self):
        assert make_channel(finish=400).finish_ns == pytest.approx(1000.0)

    def test_bus_efficiency(self):
        assert make_channel(finish=1000, data=800).bus_efficiency == pytest.approx(0.8)

    def test_bus_efficiency_empty(self):
        # Regression: an empty run moved no data and must report 0.0
        # efficiency, not a vacuous 1.0.
        empty = make_channel(finish=0, data=0, reads=0)
        assert empty.bus_efficiency == 0.0

    def test_effective_bandwidth(self):
        ch = make_channel(finish=400, reads=400)  # 6400 B in 1000 ns
        assert ch.effective_bandwidth_bytes_per_s == pytest.approx(6.4e9)

    def test_bytes_moved(self):
        assert make_channel(reads=10, writes=5).bytes_moved == 240


class TestSimulationResult:
    def test_access_time_is_slowest_channel(self):
        r = SimulationResult(
            channels=[make_channel(finish=1000), make_channel(finish=1400)],
            freq_mhz=400.0,
        )
        assert r.sample_access_time_ns == pytest.approx(1400 * 2.5)

    def test_scaling_divides_time_and_bytes(self):
        r = SimulationResult(
            channels=[make_channel(finish=1000, reads=100)],
            freq_mhz=400.0,
            scale=0.5,
        )
        assert r.access_time_ns == pytest.approx(2 * r.sample_access_time_ns)
        assert r.total_bytes == pytest.approx(2 * r.sample_bytes)

    def test_rejects_empty_channels(self):
        with pytest.raises(ConfigurationError):
            SimulationResult(channels=[], freq_mhz=400.0)

    def test_rejects_bad_scale(self):
        with pytest.raises(ConfigurationError):
            SimulationResult(channels=[make_channel()], freq_mhz=400.0, scale=0.0)
        with pytest.raises(ConfigurationError):
            SimulationResult(channels=[make_channel()], freq_mhz=400.0, scale=1.5)

    def test_merged_counters(self):
        r = SimulationResult(
            channels=[make_channel(reads=100), make_channel(reads=50, writes=10)],
            freq_mhz=400.0,
        )
        merged = r.merged_counters()
        assert merged.reads == 150
        assert merged.writes == 10
        assert merged.activates == 8

    def test_merged_states(self):
        r = SimulationResult(
            channels=[make_channel(finish=1000), make_channel(finish=500)],
            freq_mhz=400.0,
        )
        assert r.merged_states().active_standby_ns == pytest.approx(1500 * 2.5)

    def test_aggregate_bus_efficiency(self):
        # Two channels, slowest finishes at 1000; data 800 + 400.
        r = SimulationResult(
            channels=[
                make_channel(finish=1000, data=800),
                make_channel(finish=500, data=400),
            ],
            freq_mhz=400.0,
        )
        assert r.bus_efficiency == pytest.approx(1200 / 2000)

    def test_describe_contains_access_time(self):
        r = SimulationResult(channels=[make_channel()], freq_mhz=400.0)
        assert "ms" in r.describe()
