"""Tests for the channel-cluster extension."""

import pytest

from repro.core.clusters import ChannelCluster, ClusteredMemorySystem
from repro.core.config import SystemConfig
from repro.errors import ConfigurationError
from repro.load.generators import sequential_stream


def make_clusters():
    return ClusteredMemorySystem(
        [
            ChannelCluster("video", SystemConfig(channels=4, freq_mhz=400.0)),
            ChannelCluster("ui", SystemConfig(channels=2, freq_mhz=400.0)),
        ]
    )


class TestConstruction:
    def test_total_channels(self):
        assert make_clusters().total_channels == 6

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            ClusteredMemorySystem([])

    def test_rejects_duplicate_names(self):
        with pytest.raises(ConfigurationError):
            ClusteredMemorySystem(
                [
                    ChannelCluster("a", SystemConfig(channels=1)),
                    ChannelCluster("a", SystemConfig(channels=2)),
                ]
            )

    def test_rejects_mixed_clocks(self):
        with pytest.raises(ConfigurationError):
            ClusteredMemorySystem(
                [
                    ChannelCluster("a", SystemConfig(channels=1, freq_mhz=200.0)),
                    ChannelCluster("b", SystemConfig(channels=1, freq_mhz=400.0)),
                ]
            )

    def test_rejects_empty_name(self):
        with pytest.raises(ConfigurationError):
            ChannelCluster("", SystemConfig())


class TestRun:
    def test_independent_workloads(self):
        clusters = make_clusters()
        results = clusters.run(
            {
                "video": sequential_stream(2**20, block_bytes=4096),
                "ui": sequential_stream(2**18, block_bytes=4096),
            }
        )
        assert set(results) == {"video", "ui"}
        assert results["video"].sample_bytes == 2**20
        assert results["ui"].sample_bytes == 2**18

    def test_idle_cluster_produces_no_result(self):
        clusters = make_clusters()
        results = clusters.run({"video": sequential_stream(2**18)})
        assert "ui" not in results

    def test_unknown_cluster_rejected(self):
        with pytest.raises(ConfigurationError):
            make_clusters().run({"nope": sequential_stream(1024)})

    def test_clusters_isolated_from_each_other(self):
        """A heavy workload on one cluster must not slow the other --
        the paper's rationale for independent clusters."""
        clusters = make_clusters()
        light = sequential_stream(2**18, block_bytes=4096)
        alone = clusters.run({"ui": light})["ui"].sample_access_time_ns
        heavy = sequential_stream(2**22, block_bytes=4096)
        together = clusters.run({"ui": light, "video": heavy})
        assert together["ui"].sample_access_time_ns == pytest.approx(alone)

    def test_describe(self):
        text = make_clusters().describe()
        assert "video:4ch" in text
        assert "ui:2ch" in text
