"""Tests for the multi-channel memory system."""

import pytest

from repro.controller.request import MasterTransaction, Op
from repro.core.config import SystemConfig
from repro.core.system import MultiChannelMemorySystem
from repro.errors import AddressError, ConfigurationError
from repro.load.generators import sequential_stream


def make_system(channels=2, freq=400.0):
    return MultiChannelMemorySystem(SystemConfig(channels=channels, freq_mhz=freq))


class TestRun:
    def test_single_transaction_spreads_over_channels(self):
        system = make_system(channels=4)
        result = system.run([MasterTransaction(Op.READ, 0, 256)])
        # 16 chunks over 4 channels: 4 chunks each.
        assert [ch.total_chunks for ch in result.channels] == [4, 4, 4, 4]

    def test_all_channels_used_by_one_master_transaction(self):
        # Section III: interleaved "in such a way that all the channels
        # can be used in a single master transaction".
        system = make_system(channels=8)
        result = system.run([MasterTransaction(Op.READ, 0, 16 * 8)])
        assert all(ch.total_chunks == 1 for ch in result.channels)

    def test_total_bytes_preserved(self):
        system = make_system(channels=4)
        txns = sequential_stream(64 * 1024, block_bytes=4096)
        result = system.run(txns)
        assert result.sample_bytes == 64 * 1024

    def test_scale_recorded(self):
        system = make_system()
        result = system.run([MasterTransaction(Op.READ, 0, 64)], scale=0.25)
        assert result.scale == 0.25
        assert result.access_time_ns == pytest.approx(
            result.sample_access_time_ns / 0.25
        )

    def test_empty_channel_allowed(self):
        # A tiny transaction may touch only some channels.
        system = make_system(channels=8)
        result = system.run([MasterTransaction(Op.READ, 0, 16)])
        assert result.channels[0].total_chunks == 1
        assert result.channels[1].total_chunks == 0


class TestChannelScaling:
    def test_speedup_near_two_per_doubling(self):
        # Fig. 3/4's central trend at the system level.
        txns = sequential_stream(2 * 2**20, block_bytes=4096)
        times = {}
        for m in (1, 2, 4):
            times[m] = make_system(channels=m).run(txns).sample_access_time_ns
        assert 1.7 <= times[1] / times[2] <= 2.05
        assert 1.7 <= times[2] / times[4] <= 2.05

    def test_effective_bandwidth_below_peak(self):
        system = make_system(channels=2)
        txns = sequential_stream(2**20, block_bytes=4096)
        result = system.run(txns)
        assert 0 < result.effective_bandwidth_bytes_per_s < (
            system.peak_bandwidth_bytes_per_s
        )


class TestCapacityWrap:
    def test_wrap_maps_modulo_capacity(self):
        system = make_system(channels=1)
        capacity = system.config.total_capacity_bytes
        wrapped = system.run([MasterTransaction(Op.READ, capacity, 16)])
        direct = system.run([MasterTransaction(Op.READ, 0, 16)])
        assert wrapped.sample_access_time_ns == direct.sample_access_time_ns

    def test_wrap_disabled_raises(self):
        system = make_system(channels=1)
        capacity = system.config.total_capacity_bytes
        with pytest.raises(AddressError):
            system.run(
                [MasterTransaction(Op.READ, capacity - 16, 64)],
                wrap_capacity=False,
            )

    def test_transaction_bigger_than_memory_rejected(self):
        system = make_system(channels=1)
        capacity = system.config.total_capacity_bytes
        with pytest.raises(AddressError):
            system.run([MasterTransaction(Op.READ, 0, capacity + 16)])

    def test_straddling_transaction_splits(self):
        system = make_system(channels=2)
        capacity = system.config.total_capacity_bytes
        result = system.run([MasterTransaction(Op.READ, capacity - 32, 64)])
        assert result.sample_bytes == 64


class TestArrivalConversion:
    """Arrival timestamps convert to cycles by *ceiling*: a request
    arriving strictly inside cycle k cannot issue at cycle k (the old
    truncation started it one cycle early), and an arrival of exactly
    0.0 ns is a timestamp, not a missing one."""

    def _finish(self, arrival_ns):
        system = make_system(channels=1)
        txn = MasterTransaction(Op.READ, 0, 16, arrival_ns=arrival_ns)
        return system.run([txn]).channels[0].finish_cycle

    def test_exact_edge_issues_on_the_edge(self):
        # 25.0 ns at 400 MHz (tck = 2.5 ns) is exactly cycle 10: one
        # cycle later than a 22.5 ns (cycle 9) arrival.
        assert self._finish(25.0) == self._finish(22.5) + 1

    def test_sub_cycle_arrival_rounds_up(self):
        # 24.9 ns lies strictly inside cycle 9: the access must wait
        # for cycle 10, same as an exact 25.0 ns arrival.  Truncation
        # issued it at cycle 9.
        assert self._finish(24.9) == self._finish(25.0)

    def test_past_edge_costs_one_more_cycle(self):
        assert self._finish(25.1) == self._finish(25.0) + 1

    def test_float_noise_on_edge_absorbed(self):
        # Sub-epsilon overshoot from ns float arithmetic must not push
        # the arrival into the next cycle.
        assert self._finish(25.0 + 1e-9) == self._finish(25.0)

    def test_zero_arrival_equals_missing_arrival(self):
        system = make_system(channels=1)
        zero = system.run([MasterTransaction(Op.READ, 0, 16, arrival_ns=0.0)])
        missing = system.run(
            [MasterTransaction(Op.READ, 0, 16, arrival_ns=None)]
        )
        assert zero.channels == missing.channels

    def test_negative_arrival_rejected(self):
        # Regression: int() truncates toward zero, so a negative
        # arrival silently rounded the *wrong* way (e.g. -2.4 ns ->
        # cycle -1 -> clamped semantics nobody asked for).  It must be
        # rejected loudly instead of accepted as roughly-zero.
        system = make_system(channels=1)
        with pytest.raises(ConfigurationError, match="arrival_ns"):
            system.run([MasterTransaction(Op.READ, 0, 16, arrival_ns=-2.4)])

    def test_slightly_negative_arrival_rejected(self):
        # Even a sub-cycle negative value is a caller bug, not noise:
        # the load models never produce one.
        system = make_system(channels=1)
        with pytest.raises(ConfigurationError, match="arrival_ns"):
            system.run([MasterTransaction(Op.READ, 0, 16, arrival_ns=-0.1)])


class TestDescribe:
    def test_describe_delegates_to_config(self):
        system = make_system(channels=2)
        assert system.describe() == system.config.describe()


def _default_backend_logs_commands():
    from repro.backends import get_backend
    from repro.backends.registry import default_backend_name

    return get_backend(default_backend_name()).supports_command_log


@pytest.mark.skipif(
    not _default_backend_logs_commands(),
    reason="default backend cannot produce command logs to audit",
)
class TestSystemAudit:
    def test_use_case_run_is_protocol_clean_on_every_channel(self):
        """End-to-end integration: a real frame fragment through the
        full multi-channel system yields protocol-clean command
        streams on every channel."""
        from repro.load.model import VideoRecordingLoadModel
        from repro.usecase.levels import level_by_name
        from repro.usecase.pipeline import VideoRecordingUseCase

        load = VideoRecordingLoadModel(VideoRecordingUseCase(level_by_name("3.1")))
        txns = load.generate_frame(scale=1 / 128)
        system = make_system(channels=4)
        logs = []
        result = system.run(txns, scale=1 / 128, command_logs=logs)
        assert len(logs) == 4
        assert all(log for log in logs)
        assert system.audit(logs) == []
        # The logs agree with the counters.
        from repro.dram.commands import Command

        reads = sum(
            1 for log in logs for rec in log if rec.command is Command.READ
        )
        assert reads == result.merged_counters().reads

    def test_audit_reports_channel_index(self):
        from repro.dram.commands import Command
        from repro.dram.protocol import CommandRecord

        system = make_system(channels=2)
        bogus = [[], [CommandRecord(5, Command.READ, 0, 1)]]
        problems = system.audit(bogus)
        assert problems
        assert problems[0].startswith("channel 1:")
