"""Tests for the system configuration."""

import pytest

from repro.controller.mapping import AddressMultiplexing
from repro.controller.pagepolicy import PagePolicy
from repro.core.config import (
    PAPER_CHANNEL_COUNTS,
    PAPER_FREQUENCIES_MHZ,
    SystemConfig,
)
from repro.errors import ConfigurationError


class TestDefaults:
    def test_paper_design_point(self):
        cfg = SystemConfig()
        assert cfg.channels == 1
        assert cfg.freq_mhz == 400.0
        assert cfg.multiplexing is AddressMultiplexing.RBC
        assert cfg.page_policy is PagePolicy.OPEN
        assert cfg.power_down.name == "immediate"

    def test_paper_sweep_constants(self):
        assert PAPER_CHANNEL_COUNTS == (1, 2, 4, 8)
        assert PAPER_FREQUENCIES_MHZ == (200.0, 266.0, 333.0, 400.0, 466.0, 533.0)


class TestValidation:
    def test_rejects_zero_channels(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(channels=0)

    def test_rejects_non_power_of_two_channels(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(channels=3)

    def test_rejects_out_of_range_frequency(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(freq_mhz=100.0)

    def test_accepts_paper_extremes(self):
        SystemConfig(channels=8, freq_mhz=533.0)
        SystemConfig(channels=1, freq_mhz=200.0)


class TestDerived:
    def test_peak_bandwidth_8ch_400mhz(self):
        cfg = SystemConfig(channels=8, freq_mhz=400.0)
        assert cfg.peak_bandwidth_bytes_per_s == pytest.approx(25.6e9)

    def test_total_capacity(self):
        cfg = SystemConfig(channels=4)
        assert cfg.total_capacity_bytes == 4 * 64 * 2**20

    def test_with_channels(self):
        cfg = SystemConfig(channels=1).with_channels(8)
        assert cfg.channels == 8
        assert cfg.freq_mhz == 400.0

    def test_with_frequency(self):
        cfg = SystemConfig().with_frequency(266.0)
        assert cfg.freq_mhz == 266.0

    def test_describe_mentions_key_facts(self):
        text = SystemConfig(channels=4).describe()
        assert "4ch" in text
        assert "400" in text
        assert "RBC" in text
