"""Tests for the closed-form analytic model, including agreement with
the event-driven simulator."""

import pytest

from repro.core.analytic import AnalyticModel
from repro.core.config import SystemConfig
from repro.core.system import MultiChannelMemorySystem
from repro.errors import ConfigurationError
from repro.load.generators import sequential_stream
from repro.load.model import VideoRecordingLoadModel
from repro.usecase.levels import level_by_name
from repro.usecase.pipeline import VideoRecordingUseCase


class TestEstimateBasics:
    def test_rejects_nonpositive_bytes(self):
        model = AnalyticModel(SystemConfig())
        with pytest.raises(ConfigurationError):
            model.estimate(0)

    def test_efficiency_below_one(self):
        model = AnalyticModel(SystemConfig())
        est = model.estimate(10 * 2**20)
        assert 0.5 < est.bus_efficiency < 1.0

    def test_access_time_linear_in_bytes(self):
        model = AnalyticModel(SystemConfig())
        one = model.estimate(2**20)
        ten = model.estimate(10 * 2**20)
        assert ten.access_time_ns == pytest.approx(10 * one.access_time_ns, rel=1e-6)

    def test_more_channels_faster(self):
        est1 = AnalyticModel(SystemConfig(channels=1)).estimate(2**24)
        est4 = AnalyticModel(SystemConfig(channels=4)).estimate(2**24)
        assert est4.access_time_ns < est1.access_time_ns / 3.5

    def test_switches_add_time(self):
        model = AnalyticModel(SystemConfig())
        quiet = model.estimate(2**20, rw_switches=0)
        noisy = model.estimate(2**20, rw_switches=1000)
        assert noisy.access_time_ns > quiet.access_time_ns

    def test_streaming_power_positive(self):
        est = AnalyticModel(SystemConfig(channels=4)).estimate(2**24)
        assert est.streaming_power_w > 0

    def test_access_time_ms_property(self):
        est = AnalyticModel(SystemConfig()).estimate(2**20)
        assert est.access_time_ms == pytest.approx(est.access_time_ns / 1e6)


class TestAgreementWithSimulator:
    """The analytic model must track the engine within tolerance --
    this is the cross-check the two implementations give each other."""

    @pytest.mark.parametrize("channels", [1, 2, 4, 8])
    def test_sequential_stream_agreement(self, channels):
        total = 4 * 2**20
        config = SystemConfig(channels=channels, freq_mhz=400.0)
        txns = sequential_stream(total, block_bytes=4096)
        sim = MultiChannelMemorySystem(config).run(txns)
        est = AnalyticModel(config).estimate(total, rw_switches=0)
        assert est.access_time_ns == pytest.approx(
            sim.sample_access_time_ns, rel=0.08
        )

    @pytest.mark.parametrize("freq", [200.0, 400.0, 533.0])
    def test_frequency_sweep_agreement(self, freq):
        total = 2 * 2**20
        config = SystemConfig(channels=2, freq_mhz=freq)
        txns = sequential_stream(total, block_bytes=4096)
        sim = MultiChannelMemorySystem(config).run(txns)
        est = AnalyticModel(config).estimate(total)
        assert est.access_time_ns == pytest.approx(
            sim.sample_access_time_ns, rel=0.10
        )

    def test_use_case_agreement_with_switch_statistics(self):
        """Feeding the load model's measured summary into the analytic
        model must predict the simulated frame time within ~12 %."""
        level = level_by_name("3.1")
        use_case = VideoRecordingUseCase(level)
        load = VideoRecordingLoadModel(use_case)
        txns = load.generate_frame(scale=1 / 64)
        summary = load.summarize(txns)
        config = SystemConfig(channels=2, freq_mhz=400.0)
        sim = MultiChannelMemorySystem(config).run(txns, scale=1 / 64)
        est = AnalyticModel(config).estimate(
            summary.total_bytes,
            rw_switches=summary.rw_switches,
            read_fraction=summary.read_fraction,
        )
        assert est.access_time_ns == pytest.approx(
            sim.sample_access_time_ns, rel=0.12
        )
