"""Tests for the Table II channel interleaving."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.controller.request import MasterTransaction, Op
from repro.core.interleave import ChannelInterleaver
from repro.errors import ConfigurationError


class TestTable2:
    """The paper's worked example: 16-byte granules round-robin."""

    def test_addresses_0_to_15_in_bc0(self):
        inter = ChannelInterleaver(8)
        for addr in range(16):
            assert inter.channel_of(addr) == 0

    def test_addresses_16_to_31_in_bc1(self):
        inter = ChannelInterleaver(8)
        for addr in range(16, 32):
            assert inter.channel_of(addr) == 1

    def test_wraps_after_m_channels(self):
        inter = ChannelInterleaver(4)
        assert inter.channel_of(16 * 4) == 0
        assert inter.channel_of(16 * 5) == 1

    def test_table2_rows_structure(self):
        rows = ChannelInterleaver(8).table2_rows(columns=3)
        assert rows[0] == ("0..15", "BC 0")
        assert rows[1] == ("16..31", "BC 1")
        assert rows[2] == ("32..47", "BC 2")
        # Wrap-around entry: 16 x M back to BC 0.
        assert rows[-1] == ("128..143", "BC 0")

    def test_single_channel_everything_in_bc0(self):
        inter = ChannelInterleaver(1)
        for addr in (0, 16, 12345, 10**6):
            assert inter.channel_of(addr) == 0

    def test_rejects_nonstandard_granularity(self):
        with pytest.raises(ConfigurationError):
            ChannelInterleaver(4, granularity=64)

    def test_rejects_zero_channels(self):
        with pytest.raises(ConfigurationError):
            ChannelInterleaver(0)


class TestLocalGlobalMapping:
    @given(
        st.sampled_from([1, 2, 4, 8]),
        st.integers(min_value=0, max_value=2**30),
    )
    def test_round_trip(self, channels, addr):
        inter = ChannelInterleaver(channels)
        ch = inter.channel_of(addr)
        local = inter.local_address(addr)
        assert inter.global_address(ch, local) == addr

    def test_local_address_packs_densely(self):
        inter = ChannelInterleaver(2)
        # Channel 0 receives global chunks 0, 2, 4... as local 0, 1, 2...
        assert inter.local_address(0) == 0
        assert inter.local_address(32) == 16
        assert inter.local_address(64) == 32

    def test_global_address_validates(self):
        inter = ChannelInterleaver(4)
        with pytest.raises(ConfigurationError):
            inter.global_address(4, 0)
        with pytest.raises(ConfigurationError):
            inter.global_address(0, -16)


class TestSplitSpan:
    def test_even_split(self):
        inter = ChannelInterleaver(4)
        parts = inter.split_span(0, 7)  # 8 chunks over 4 channels
        assert parts == [(0, 0, 2), (1, 0, 2), (2, 0, 2), (3, 0, 2)]

    def test_offset_start(self):
        inter = ChannelInterleaver(4)
        parts = inter.split_span(2, 5)  # chunks 2,3,4,5
        as_dict = {ch: (start, count) for ch, start, count in parts}
        assert as_dict == {2: (0, 1), 3: (0, 1), 0: (1, 1), 1: (1, 1)}

    def test_span_smaller_than_channel_count(self):
        inter = ChannelInterleaver(8)
        parts = inter.split_span(0, 2)
        assert len(parts) == 3  # only 3 channels touched

    def test_rejects_invalid_span(self):
        with pytest.raises(ConfigurationError):
            ChannelInterleaver(2).split_span(5, 4)
        with pytest.raises(ConfigurationError):
            ChannelInterleaver(2).split_span(-1, 4)

    @given(
        st.sampled_from([1, 2, 4, 8]),
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=1, max_value=5000),
    )
    @settings(max_examples=60, deadline=None)
    def test_split_is_a_partition(self, channels, first, count):
        """Every chunk of the span lands on exactly one channel, at the
        right local index -- the correctness core of the simulator."""
        inter = ChannelInterleaver(channels)
        last = first + count - 1
        parts = inter.split_span(first, last)
        # Counts cover the span exactly.
        assert sum(c for _, _, c in parts) == count
        # Each part's chunks map back into the span, in order.
        seen = set()
        for ch, start, cnt in parts:
            for k in range(cnt):
                g = (start + k) * channels + ch
                assert first <= g <= last
                assert g not in seen
                seen.add(g)
        assert len(seen) == count

    def test_split_transaction_carries_op(self):
        inter = ChannelInterleaver(2)
        txn = MasterTransaction(Op.WRITE, 0, 64)
        parts = inter.split_transaction(txn)
        assert all(op == 1 for _, op, _, _ in parts)
