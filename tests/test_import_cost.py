"""Import-cost pin: ``import repro`` must stay cheap.

The package facade lazy-loads the heavy ``repro.analysis`` surface via
PEP 562 ``__getattr__``; these tests run a fresh interpreter so the
current process's already-imported modules cannot mask a regression.
"""

import json
import subprocess
import sys


def _fresh_python(code):
    proc = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        check=True,
    )
    return proc.stdout


class TestLazyFacade:
    def test_import_repro_does_not_pull_analysis(self):
        out = _fresh_python(
            "import sys, json, repro;"
            "print(json.dumps([m for m in sys.modules"
            " if m.startswith('repro.analysis')]))"
        )
        loaded = json.loads(out)
        assert loaded == [], (
            f"import repro eagerly loaded {loaded}; the analysis surface "
            "must stay behind the PEP 562 facade"
        )

    def test_import_repro_does_not_pull_charts(self):
        out = _fresh_python(
            "import sys, repro;"
            "print('repro.analysis.charts' in sys.modules)"
        )
        assert out.strip() == "False"

    def test_lazy_names_resolve_and_load_analysis(self):
        out = _fresh_python(
            "import sys, repro;"
            "fn = repro.sweep_use_case;"
            "print(fn.__module__, 'repro.analysis' in sys.modules)"
        )
        module, loaded = out.split()
        assert module == "repro.analysis.sweep"
        assert loaded == "True"

    def test_every_public_name_resolves(self):
        _fresh_python(
            "import repro;"
            "[getattr(repro, name) for name in repro.__all__]"
        )

    def test_unknown_attribute_raises(self):
        out = _fresh_python(
            "import repro\n"
            "try:\n"
            "    repro.no_such_name\n"
            "except AttributeError as exc:\n"
            "    print('AttributeError', 'no_such_name' in str(exc))\n"
        )
        assert out.strip() == "AttributeError True"

    def test_dir_advertises_lazy_names(self):
        out = _fresh_python(
            "import repro;"
            "d = dir(repro);"
            "print('run_fig3' in d, 'SystemConfig' in d)"
        )
        assert out.strip() == "True True"
