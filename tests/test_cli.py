"""Tests for the command-line interface."""

import re

import pytest

from repro.cli import main


@pytest.fixture
def fast_args():
    # Tiny workload fraction keeps CLI tests quick.
    return ["--scale", str(1 / 256)]


class TestSubcommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "Video encoder" in out

    def test_table2_channels(self, capsys):
        assert main(["table2", "--channels", "4"]) == 0
        out = capsys.readouterr().out
        assert "BC 0" in out
        assert "4 channels" in out

    def test_fig3(self, capsys, fast_args):
        assert main(fast_args + ["fig3"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 3" in out
        assert "Clock [MHz]" in out

    def test_fig4(self, capsys, fast_args):
        assert main(fast_args + ["fig4"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 4" in out

    def test_fig5(self, capsys, fast_args):
        assert main(fast_args + ["fig5"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 5" in out
        assert "mW" in out

    def test_xdr(self, capsys, fast_args):
        assert main(fast_args + ["xdr"]) == 0
        out = capsys.readouterr().out
        assert "XDR" in out

    def test_budget_flag(self, capsys):
        assert main(["--budget", "20000", "fig3"]) == 0
        assert "Fig. 3" in capsys.readouterr().out


class TestArgumentHandling:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            main(["fig9"])

    def test_fig4_custom_frequency(self, capsys, fast_args):
        assert main(fast_args + ["fig4", "--freq", "266"]) == 0
        assert "266" in capsys.readouterr().out


class TestNewSubcommands:
    def test_breakdown(self, capsys):
        assert main(["--budget", "30000", "breakdown", "--level", "3.1",
                     "--channels", "2"]) == 0
        out = capsys.readouterr().out
        assert "Per-stage breakdown" in out
        assert "Video encoder" in out

    def test_explore(self, capsys):
        assert main(["--budget", "30000", "explore", "--level", "3.2"]) == 0
        out = capsys.readouterr().out
        assert "minimum channels" in out

    def test_csv_export(self, tmp_path, capsys):
        csv_dir = tmp_path / "out"
        assert main(["--budget", "20000", "--csv", str(csv_dir), "fig4"]) == 0
        assert (csv_dir / "fig4.csv").exists()
        header = (csv_dir / "fig4.csv").read_text().splitlines()[0]
        assert header.startswith("level,")

    def test_csv_export_table1(self, tmp_path):
        csv_dir = tmp_path / "t1"
        assert main(["--csv", str(csv_dir), "table1"]) == 0
        assert (csv_dir / "table1.csv").exists()

    def test_chart_flag(self, capsys):
        assert main(["--budget", "20000", "--chart", "fig5"]) == 0
        out = capsys.readouterr().out
        assert "#" in out  # bar characters present

    def test_report(self, tmp_path, capsys):
        out = tmp_path / "R.md"
        assert main(["--budget", "30000", "report", "--out", str(out)]) == 0
        assert out.exists()
        assert "anchors reproduced" in capsys.readouterr().out

    def test_validate(self, capsys):
        assert main(["--budget", "30000", "validate", "--level", "3.1",
                     "--channels", "2"]) == 0
        out = capsys.readouterr().out
        assert "correctness oracles" in out
        assert "VALIDATION FAILED" not in out


class TestResilienceFlags:
    def test_checkpoint_writes_points(self, tmp_path, capsys, fast_args):
        ckpt = tmp_path / "fig4.ckpt"
        assert main(fast_args + ["--checkpoint", str(ckpt), "fig4"]) == 0
        assert ckpt.exists()
        assert len(ckpt.read_text().splitlines()) > 0

    def test_resume_reuses_checkpoint(self, tmp_path, capsys, fast_args):
        ckpt = tmp_path / "fig4.ckpt"
        assert main(fast_args + ["--checkpoint", str(ckpt), "fig4"]) == 0
        first = capsys.readouterr().out
        lines_after_first = len(ckpt.read_text().splitlines())
        assert main(
            fast_args + ["--checkpoint", str(ckpt), "--resume", "fig4"]
        ) == 0
        second = capsys.readouterr().out
        # Identical artifact, and no points were re-recorded.
        assert second == first
        assert len(ckpt.read_text().splitlines()) == lines_after_first

    def test_checkpoint_without_resume_truncates(self, tmp_path, fast_args):
        ckpt = tmp_path / "fig4.ckpt"
        ckpt.write_text("stale garbage\n")
        assert main(fast_args + ["--checkpoint", str(ckpt), "fig4"]) == 0
        assert "stale garbage" not in ckpt.read_text()

    def test_resume_requires_checkpoint(self):
        with pytest.raises(SystemExit):
            main(["--resume", "fig4"])

    def test_no_strict_flag_accepted(self, capsys, fast_args):
        assert main(fast_args + ["--no-strict", "fig4"]) == 0
        assert "Fig. 4" in capsys.readouterr().out

    def test_check_invariants_fig3(self, capsys):
        assert main(["--budget", "2000", "--check-invariants", "fig3"]) == 0
        assert "Fig. 3" in capsys.readouterr().out


class TestTelemetryFlags:
    def test_metrics_out_writes_schema_valid_json(
        self, tmp_path, capsys, fast_args
    ):
        import json

        from repro.telemetry import validate_metrics

        path = tmp_path / "metrics.json"
        assert main(fast_args + ["--metrics-out", str(path), "fig3"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 3" in out
        assert "wrote metrics" in out
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert validate_metrics(payload) == []
        assert payload["command"] == "fig3"
        assert payload["counters"]["sweep.points_total"] > 0
        assert payload["counters"]["engine.reads"] > 0

    def test_metrics_out_artifact_identical_to_untapped_run(
        self, tmp_path, capsys, fast_args
    ):
        assert main(fast_args + ["fig3"]) == 0
        plain = capsys.readouterr().out
        path = tmp_path / "metrics.json"
        assert main(fast_args + ["--metrics-out", str(path), "fig3"]) == 0
        tapped = capsys.readouterr().out
        assert tapped.startswith(plain.rstrip("\n"))

    def test_progress_heartbeats_on_stderr(self, capsys, fast_args):
        assert main(fast_args + ["--progress", "fig3"]) == 0
        err = capsys.readouterr().err
        assert "sweep" in err
        assert "done in" in err

    def test_profile_subcommand(self, capsys, fast_args):
        assert main(fast_args + ["profile", "fig3"]) == 0
        out = capsys.readouterr().out
        assert "Phase profile: fig3" in out
        assert "system.engine" in out
        assert "engine.row_hits" in out

    def test_profile_with_metrics_out(self, tmp_path, capsys, fast_args):
        from repro.telemetry import validate_metrics_file

        path = tmp_path / "profile.json"
        assert (
            main(fast_args + ["--metrics-out", str(path), "profile", "fig4"])
            == 0
        )
        assert validate_metrics_file(path) == []

    def test_profile_requires_figure(self):
        with pytest.raises(SystemExit):
            main(["profile"])
        with pytest.raises(SystemExit):
            main(["profile", "table1"])


class TestBackendFlags:
    def test_backend_fast_artifact_identical(self, capsys, fast_args):
        assert main(fast_args + ["fig3"]) == 0
        reference = capsys.readouterr().out
        assert main(fast_args + ["--backend", "fast", "fig3"]) == 0
        fast = capsys.readouterr().out
        assert fast == reference

    def test_backend_analytic_runs(self, capsys, fast_args):
        assert main(fast_args + ["--backend", "analytic", "fig3"]) == 0
        assert "Fig. 3" in capsys.readouterr().out

    def test_unknown_backend_rejected_everywhere(self):
        from repro.errors import ConfigurationError

        # table1 builds no SystemConfig, so this pins the CLI's own
        # eager validation rather than the config's.
        with pytest.raises(ConfigurationError) as excinfo:
            main(["--backend", "nope", "table1"])
        message = str(excinfo.value)
        assert "nope" in message
        assert "reference" in message

    def test_unknown_prescreen_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["explore", "--level", "3.1", "--prescreen", "nope"])

    def test_checkpoint_backend_mixing_refused_without_force(
        self, tmp_path, fast_args
    ):
        from repro.errors import CheckpointError

        ckpt = tmp_path / "fig4.ckpt"
        assert main(fast_args + ["--checkpoint", str(ckpt), "fig4"]) == 0
        with pytest.raises(CheckpointError):
            main(
                fast_args
                + ["--checkpoint", str(ckpt), "--resume",
                   "--backend", "analytic", "fig4"]
            )
        assert main(
            fast_args
            + ["--checkpoint", str(ckpt), "--resume", "--force",
               "--backend", "analytic", "fig4"]
        ) == 0

    def test_metrics_record_backend(self, tmp_path, capsys, fast_args):
        import json

        path = tmp_path / "metrics.json"
        assert main(
            fast_args + ["--backend", "fast", "--metrics-out", str(path),
                         "fig3"]
        ) == 0
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["backend"] == "fast"
        assert payload["counters"]["sweep.backend.fast"] > 0

    def test_explore_prescreen(self, capsys):
        assert main(
            ["--budget", "10000", "explore", "--level", "3.1",
             "--prescreen", "analytic"]
        ) == 0
        assert "minimum channels" in capsys.readouterr().out


class TestRegressionSubcommands:
    def test_verify_paper_passes_on_clean_tree(self, capsys):
        assert main(["verify-paper"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "cells within tolerance" in out

    def test_verify_paper_screening_backend_widens(self, capsys):
        assert main(["--backend", "analytic", "verify-paper"]) == 0
        assert "backend=analytic" in capsys.readouterr().out

    def test_verify_paper_update_writes_files(self, tmp_path, capsys):
        assert main(
            ["--budget", "3000", "verify-paper", "--update",
             "--goldens", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        for name in ("table1", "table2", "fig3", "fig4", "fig5"):
            assert (tmp_path / f"{name}.json").exists()
        # And the freshly written goldens verify against themselves.
        assert main(["verify-paper", "--goldens", str(tmp_path)]) == 0

    def test_verify_paper_fails_on_mismatch(self, tmp_path, capsys):
        import shutil
        from pathlib import Path

        fixture = (
            Path(__file__).parent / "regression" / "fixtures" / "broken"
        )
        from repro.regression import PACKAGED_GOLDENS_DIR

        for name in ("table2", "fig3", "fig4", "fig5"):
            shutil.copy(PACKAGED_GOLDENS_DIR / f"{name}.json", tmp_path)
        shutil.copy(fixture / "table1.json", tmp_path)
        assert main(["verify-paper", "--goldens", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "MISMATCH" in out

    def test_fuzz_small_campaign(self, capsys):
        assert main(["fuzz", "--cases", "5", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "fuzz campaign seed=3: 5 cases" in out
        assert out.rstrip().endswith("PASS")

    def test_fuzz_single_backend_no_invariants(self, capsys):
        assert main(
            ["--backend", "fast", "fuzz", "--cases", "5", "--no-invariants"]
        ) == 0
        assert "PASS" in capsys.readouterr().out

    def test_fuzz_repro_round_trip(self, capsys):
        from repro.regression import generate_case

        spec = generate_case(6, 0).repro()
        assert main(["fuzz", "--repro", spec]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_fuzz_metrics_out(self, tmp_path, capsys):
        import json

        path = tmp_path / "metrics.json"
        assert main(
            ["--metrics-out", str(path), "fuzz", "--cases", "4"]
        ) == 0
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["counters"]["regression.cases"] == 4
        assert payload["counters"]["regression.mismatches"] == 0


class TestSupervisionFlags:
    """--point-timeout, --durable-checkpoint and the chaos subcommand."""

    def test_chaos_subcommand_passes(self, capsys):
        from repro.parallel import pool_supported

        if not pool_supported():
            pytest.skip("process pool unavailable on this platform")
        assert main(["--budget", "2000", "chaos", "--seeds", "1"]) == 0
        out = capsys.readouterr().out
        assert "Chaos campaign" in out
        assert "seed 1:" in out
        assert "PASS" in out

    def test_chaos_rejects_non_integer_seeds(self):
        with pytest.raises(SystemExit, match="comma-separated integer"):
            main(["--budget", "2000", "chaos", "--seeds", "one,two"])

    def test_chaos_rejects_empty_seed_list(self):
        with pytest.raises(SystemExit, match="at least one seed"):
            main(["--budget", "2000", "chaos", "--seeds", ","])

    def test_point_timeout_accepted_on_sweeps(self, capsys, fast_args):
        assert main(fast_args + ["--point-timeout", "120", "fig4"]) == 0
        assert "Fig. 4" in capsys.readouterr().out

    def test_point_timeout_accepted_on_explore(self, capsys, fast_args):
        assert main(
            fast_args + ["--point-timeout", "120", "explore", "--level", "3.1"]
        ) == 0

    def test_durable_checkpoint_requires_checkpoint(self, fast_args):
        with pytest.raises(SystemExit):
            main(fast_args + ["--durable-checkpoint", "fig4"])

    def test_durable_checkpoint_records_points(
        self, tmp_path, capsys, fast_args
    ):
        from repro.resilience import SweepCheckpoint

        ckpt = tmp_path / "fig4.ckpt"
        assert main(
            fast_args
            + ["--checkpoint", str(ckpt), "--durable-checkpoint", "fig4"]
        ) == 0
        assert len(SweepCheckpoint(ckpt)) > 0

class TestCacheFlags:
    def test_fig3_cold_then_warm(self, tmp_path, capsys, fast_args):
        cache = tmp_path / "cache"
        assert main(fast_args + ["--cache-dir", str(cache), "fig3"]) == 0
        cold = capsys.readouterr().out
        assert "0 hit(s)" in cold
        assert "miss(es)" in cold
        assert main(fast_args + ["--cache-dir", str(cache), "fig3"]) == 0
        warm = capsys.readouterr().out
        assert "24 hit(s), 0 miss(es)" in warm
        # Identical artifact whether computed or served from cache.
        assert warm.split("cache")[0] == cold.split("cache")[0]

    def test_cache_shared_between_figures(self, tmp_path, capsys, fast_args):
        # Fig. 4 and Fig. 5 sweep identical points at 400 MHz, so a
        # cache warmed by one must serve the other.
        cache = tmp_path / "cache"
        assert main(fast_args + ["--cache-dir", str(cache), "fig4"]) == 0
        capsys.readouterr()
        assert main(fast_args + ["--cache-dir", str(cache), "fig5"]) == 0
        out = capsys.readouterr().out
        assert "0 miss(es)" in out
        hits = re.search(r": (\d+) hit\(s\)", out)
        assert hits is not None and int(hits.group(1)) > 0

    def test_explore_accepts_cache_dir(self, tmp_path, capsys, fast_args):
        cache = tmp_path / "cache"
        assert main(
            fast_args
            + ["--cache-dir", str(cache), "explore", "--level", "3.1"]
        ) == 0
        assert "cache" in capsys.readouterr().out

    def test_corrupt_entry_fails_strict_but_degrades(
        self, tmp_path, capsys, fast_args
    ):
        cache = tmp_path / "cache"
        assert main(fast_args + ["--cache-dir", str(cache), "fig3"]) == 0
        capsys.readouterr()
        victim = sorted(cache.glob("*.rc"))[0]
        victim.write_text("garbage, not a cache entry\n")
        # Strict (the default): results still correct, exit code 1
        # flags the store.
        assert main(fast_args + ["--cache-dir", str(cache), "fig3"]) == 1
        out = capsys.readouterr().out
        assert "Fig. 3" in out
        assert "CACHE CORRUPTION" in out
        assert "--no-strict" in out
        # --no-strict tolerates the self-healing recompute.
        assert main(
            fast_args + ["--cache-dir", str(cache), "--no-strict", "fig3"]
        ) == 0
        out = capsys.readouterr().out
        assert "CACHE CORRUPTION" not in out


class TestSweepCommand:
    def test_sweep_reports_grid_and_cache(self, tmp_path, capsys, fast_args):
        cache = tmp_path / "cache"
        args = fast_args + [
            "--cache-dir",
            str(cache),
            "sweep",
            "--levels",
            "3.1",
            "--channels",
            "1,2",
            "--freqs",
            "200,400",
        ]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "Service sweep: 1 level(s) x 4 config(s)" in cold
        assert "LocalExecutor" in cold
        assert "4 write(s)" in cold
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert "4 served from cache" in warm
        assert "4 hit(s)" in warm

    def test_sweep_defaults_run_paper_grid(self, capsys, fast_args):
        assert main(fast_args + ["sweep", "--freqs", "400"]) == 0
        out = capsys.readouterr().out
        assert "1 level(s) x 4 config(s)" in out
        assert "Verdict" in out

    def test_sweep_rejects_bad_channel_list(self, fast_args):
        with pytest.raises(SystemExit, match="--channels"):
            main(fast_args + ["sweep", "--channels", "1,two"])

    def test_sweep_rejects_empty_freq_list(self, fast_args):
        with pytest.raises(SystemExit, match="--freqs"):
            main(fast_args + ["sweep", "--freqs", ","])

    def test_sweep_rejects_unknown_level(self, fast_args):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="9.9"):
            main(fast_args + ["sweep", "--levels", "9.9"])

    def test_sweep_checkpoint_resume(self, tmp_path, capsys, fast_args):
        ckpt = tmp_path / "svc.ckpt"
        args = fast_args + [
            "--checkpoint",
            str(ckpt),
            "sweep",
            "--freqs",
            "200",
            "--channels",
            "1,2",
        ]
        assert main(args) == 0
        capsys.readouterr()
        resumed_args = args[:2] + ["--resume"] + args[2:]
        assert main(resumed_args) == 0
        assert "2 resumed from checkpoint" in capsys.readouterr().out
