"""Tests for :mod:`repro.workloads.spec`: validation, round-trips,
binding and the instantiated traffic machinery."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.usecase.levels import level_by_name
from repro.workloads.spec import (
    BufferDecl,
    GopSpec,
    StageSpec,
    TrafficDecl,
    WorkloadParam,
    WorkloadSpec,
)

LEVEL = level_by_name("3.1")


def _spec(**overrides) -> WorkloadSpec:
    """A small but feature-complete spec: params, derived symbols,
    counted/conserved buffers, gated and fanned-out traffic."""
    fields = dict(
        name="toy_codec",
        title="Toy codec",
        description="test fixture",
        params=(
            WorkloadParam("factor", 2.0, doc="read amplification", minimum=0.0),
            WorkloadParam("intra_only", False, doc="I-frame variant"),
        ),
        derived=(
            ("frame_bits", "yuv420 * n"),
            ("ref_read", "factor * frame_bits"),
        ),
        buffers=(
            BufferDecl("src", "(frame_bits + 7) // 8", conserved=True),
            BufferDecl("ref", "(frame_bits + 7) // 8", count="n_ref"),
            BufferDecl("bs", "4096"),
        ),
        stages=(
            StageSpec(
                name="Capture",
                category="image",
                reads=(),
                writes=(TrafficDecl("src", "frame_bits"),),
            ),
            StageSpec(
                name="Encode",
                category="coding",
                reads=(
                    TrafficDecl("src", "frame_bits"),
                    TrafficDecl(
                        "ref", "ref_read", when="not intra_only", each=True
                    ),
                ),
                writes=(TrafficDecl("bs", "frame_bits / 50"),),
            ),
        ),
        gop=GopSpec(length=8, intra_param="intra_only"),
        metrics=(("amplification", "factor"),),
    )
    fields.update(overrides)
    return WorkloadSpec(**fields)


class TestValidation:
    def test_fixture_is_valid(self):
        _spec()

    def test_empty_stages_rejected(self):
        with pytest.raises(ConfigurationError, match="stages"):
            _spec(stages=())

    def test_empty_buffers_rejected(self):
        with pytest.raises(ConfigurationError, match="buffers"):
            _spec(buffers=())

    def test_param_shadowing_intrinsic_rejected(self):
        with pytest.raises(ConfigurationError, match="shadows"):
            _spec(params=(WorkloadParam("n", 1.0),))

    def test_derived_shadowing_param_rejected(self):
        with pytest.raises(ConfigurationError, match="shadows"):
            _spec(derived=(("factor", "2"),))

    def test_unknown_buffer_in_stage_rejected(self):
        stage = StageSpec(
            name="Bad",
            category="image",
            reads=(TrafficDecl("nope", "1"),),
            writes=(),
        )
        with pytest.raises(ConfigurationError, match="nope"):
            _spec(stages=(stage,))

    def test_each_requires_counted_buffer(self):
        stage = StageSpec(
            name="Bad",
            category="image",
            reads=(TrafficDecl("src", "1", each=True),),
            writes=(),
        )
        with pytest.raises(ConfigurationError, match="counted"):
            _spec(stages=(stage,))

    def test_undeclared_intra_param_rejected(self):
        with pytest.raises(ConfigurationError, match="intra_param"):
            _spec(gop=GopSpec(length=8, intra_param="missing"))

    def test_duplicate_buffers_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            _spec(
                buffers=(
                    BufferDecl("src", "16"),
                    BufferDecl("src", "32"),
                )
            )

    def test_param_bounds_enforced(self):
        spec = _spec()
        with pytest.raises(ConfigurationError, match="factor"):
            spec.resolve_params({"factor": -1.0})

    def test_unknown_param_listed(self):
        spec = _spec()
        with pytest.raises(ConfigurationError, match="typo"):
            spec.resolve_params({"typo": 1})


class TestRoundTrip:
    def test_to_from_dict_is_lossless(self):
        spec = _spec()
        clone = WorkloadSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.structure_digest() == spec.structure_digest()

    def test_zoo_specs_round_trip(self):
        from repro.workloads.registry import _BUILTIN, get_workload

        for name in _BUILTIN:
            spec = get_workload(name)
            clone = WorkloadSpec.from_dict(spec.to_dict())
            assert clone == spec, name
            # Traffic produced by the clone is bit-identical too.
            ours = spec.instantiate(LEVEL)
            theirs = clone.instantiate(LEVEL)
            assert [
                (s.name, s.reads, s.writes) for s in ours.stages()
            ] == [(s.name, s.reads, s.writes) for s in theirs.stages()]

    def test_dict_is_json_serialisable(self):
        import json

        payload = json.loads(json.dumps(_spec().to_dict()))
        assert WorkloadSpec.from_dict(payload) == _spec()

    def test_wrong_schema_tag_rejected(self):
        payload = _spec().to_dict()
        payload["schema"] = "repro-workload/99"
        with pytest.raises(ConfigurationError, match="schema"):
            WorkloadSpec.from_dict(payload)

    def test_missing_field_rejected(self):
        payload = _spec().to_dict()
        del payload["name"]
        with pytest.raises(ConfigurationError):
            WorkloadSpec.from_dict(payload)


class TestStructureDigest:
    def test_docs_do_not_participate(self):
        a = _spec()
        b = _spec(description="completely different prose")
        assert a.structure_digest() == b.structure_digest()

    def test_traffic_changes_participate(self):
        a = _spec()
        b = _spec(derived=(("frame_bits", "yuv420 * n * 2"), a.derived[1]))
        assert a.structure_digest() != b.structure_digest()


class TestBinding:
    def test_bind_resolves_defaults(self):
        bound = _spec().bind()
        assert bound.param_dict() == {"factor": 2.0, "intra_only": False}

    def test_with_params_layers(self):
        bound = _spec().bind(factor=3.0)
        assert bound.with_params(intra_only=True).param_dict() == {
            "factor": 3.0,
            "intra_only": True,
        }

    def test_intra_variant(self):
        bound = _spec().bind()
        assert bound.intra_variant(True).param_dict()["intra_only"] is True
        assert bound.intra_variant(False).param_dict()["intra_only"] is False

    def test_identity_carries_name_params_structure(self):
        bound = _spec().bind(factor=4.0)
        identity = bound.identity()
        assert identity["workload"] == "toy_codec"
        assert identity["params"]["factor"] == 4.0
        assert identity["structure"] == _spec().structure_digest()

    def test_bound_workload_is_picklable(self):
        import pickle

        bound = _spec().bind(factor=4.0)
        clone = pickle.loads(pickle.dumps(bound))
        assert clone == bound
        assert clone.identity() == bound.identity()


class TestInstance:
    def test_counted_buffer_expands(self):
        instance = _spec().instantiate(LEVEL)
        names = [b.name for b in instance.buffers()]
        assert "src" in names and "bs" in names
        refs = [n for n in names if n.startswith("ref_")]
        assert len(refs) == LEVEL.reference_frames

    def test_each_fans_out_over_instances(self):
        instance = _spec().instantiate(LEVEL)
        encode = [s for s in instance.stages() if s.name == "Encode"][0]
        ref_reads = [(b, bits) for b, bits in encode.reads if b.startswith("ref_")]
        assert len(ref_reads) == LEVEL.reference_frames
        per_ref = instance.value("ref_read")
        assert all(bits == per_ref for _, bits in ref_reads)

    def test_when_gate_drops_traffic(self):
        instance = _spec().instantiate(LEVEL, intra_only=True)
        encode = [s for s in instance.stages() if s.name == "Encode"][0]
        assert not any(b.startswith("ref_") for b, _ in encode.reads)

    def test_totals_split_by_category(self):
        instance = _spec().instantiate(LEVEL)
        capture = instance.stages()[0]
        encode = instance.stages()[1]
        assert instance.image_processing_bits_per_frame() == capture.total_bits
        assert instance.video_coding_bits_per_frame() == encode.total_bits
        assert instance.total_bits_per_frame() == (
            capture.total_bits + encode.total_bits
        )

    def test_metrics_evaluate(self):
        instance = _spec().instantiate(LEVEL, factor=5.0)
        assert instance.metric("amplification") == 5.0
        assert instance.metrics() == {"amplification": 5.0}
        with pytest.raises(ConfigurationError, match="amplification"):
            instance.metric("nope")

    def test_oracles_pass_on_fixture(self):
        assert _spec().instantiate(LEVEL).check_traffic_oracles() == []

    def test_conserved_violation_detected(self):
        # 'src' is declared conserved but only ever written: the
        # oracle must flag the read/write asymmetry.
        spec = _spec(
            stages=(
                StageSpec(
                    name="Capture",
                    category="image",
                    reads=(),
                    writes=(TrafficDecl("src", "frame_bits"),),
                ),
            )
        )
        problems = spec.instantiate(LEVEL).check_traffic_oracles()
        assert problems and "src" in problems[0]

    def test_negative_traffic_rejected(self):
        spec = _spec(
            stages=(
                StageSpec(
                    name="Capture",
                    category="image",
                    reads=(),
                    writes=(TrafficDecl("src", "0 - frame_bits"),),
                ),
            )
        )
        with pytest.raises(ConfigurationError, match="negative"):
            spec.instantiate(LEVEL)

    def test_load_model_accepts_instance(self):
        """The duck-typed load-model contract: an instantiated spec
        drives transaction generation directly."""
        from repro.load.model import VideoRecordingLoadModel

        instance = _spec().instantiate(LEVEL)
        model = VideoRecordingLoadModel(instance, block_bytes=1024)
        transactions = model.generate_frame(scale=0.001)
        assert transactions
