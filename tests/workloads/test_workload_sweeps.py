"""End-to-end: every zoo spec sweeps, checkpoints, resumes and caches
-- with per-workload keys -- plus the CLI surface (``--workload``,
``--workload-param``, ``workloads``)."""

import pytest

from repro.analysis.sweep import sweep_use_case
from repro.cli import main
from repro.core.config import SystemConfig
from repro.resilience import SweepCheckpoint
from repro.service.cache import ResultCache
from repro.usecase.levels import level_by_name
from repro.workloads.registry import _BUILTIN, resolve_workload

LEVEL = level_by_name("3.1")
CONFIGS = (SystemConfig(channels=2), SystemConfig(channels=4))
SCALE = 1 / 256
ZOO = sorted(_BUILTIN)


class TestSweepEveryZooSpec:
    @pytest.mark.parametrize("name", ZOO)
    def test_sweeps_end_to_end(self, name):
        points = sweep_use_case(
            [LEVEL], CONFIGS, scale=SCALE, workload=name
        )
        assert len(points) == len(CONFIGS)
        assert all(p.access_time_ms > 0 for p in points)

    @pytest.mark.parametrize("name", ZOO)
    def test_checkpoint_resume_per_workload(self, name, tmp_path):
        path = tmp_path / "ck.jsonl"
        first = sweep_use_case(
            [LEVEL], CONFIGS, scale=SCALE, workload=name, checkpoint=path
        )
        report = SweepCheckpoint(path).load()
        assert len(report) == len(CONFIGS)
        again = sweep_use_case(
            [LEVEL], CONFIGS, scale=SCALE, workload=name, checkpoint=path
        )
        assert [p.access_time_ms for p in again] == [
            p.access_time_ms for p in first
        ]

    def test_checkpoint_does_not_alias_across_workloads(self, tmp_path):
        """A camcorder sweep must not reuse vvc_encoder checkpoint
        points for the same grid coordinates."""
        path = tmp_path / "ck.jsonl"
        vvc = sweep_use_case(
            [LEVEL], CONFIGS, scale=SCALE, workload="vvc_encoder",
            checkpoint=path,
        )
        camcorder = sweep_use_case(
            [LEVEL], CONFIGS, scale=SCALE, workload="h264_camcorder",
            checkpoint=path,
        )
        assert [p.access_time_ms for p in camcorder] != [
            p.access_time_ms for p in vvc
        ]

    def test_cache_does_not_alias_across_workloads(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        sweep_use_case(
            [LEVEL], CONFIGS, scale=SCALE, workload="vvc_encoder", cache=cache
        )
        assert cache.stats()["writes"] == len(CONFIGS)
        sweep_use_case(
            [LEVEL], CONFIGS, scale=SCALE, workload="vdcm_display", cache=cache
        )
        stats = cache.stats()
        assert stats["hits"] == 0
        assert stats["writes"] == 2 * len(CONFIGS)
        # Same workload again: pure hits.
        sweep_use_case(
            [LEVEL], CONFIGS, scale=SCALE, workload="vvc_encoder", cache=cache
        )
        assert cache.stats()["hits"] == len(CONFIGS)

    def test_workload_params_produce_distinct_results(self):
        base = sweep_use_case(
            [LEVEL], CONFIGS[:1], scale=SCALE, workload="vvc_encoder"
        )
        bound = resolve_workload("vvc_encoder", {"encoder_factor": 24.0})
        heavier = sweep_use_case(
            [LEVEL], CONFIGS[:1], scale=SCALE, workload=bound
        )
        assert heavier[0].access_time_ms > base[0].access_time_ms


class TestCliWorkloadSurface:
    def test_workloads_subcommand_lists_zoo(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ZOO:
            assert name in out
        assert "(default)" in out

    def test_unknown_workload_is_eagerly_loud(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="vvc_encoder"):
            main(["--workload", "vcc_encoder", "fig3"])

    def test_sweep_with_workload(self, capsys):
        assert (
            main(
                [
                    "--workload",
                    "vdcm_display",
                    "--scale",
                    str(SCALE),
                    "sweep",
                    "--levels",
                    "3.1",
                    "--channels",
                    "2",
                    "--freqs",
                    "400",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "[vdcm_display]" in out
        assert "1/1 points completed" in out

    def test_workload_param_flag(self, capsys):
        assert (
            main(
                [
                    "--workload",
                    "h264_lossy_ec",
                    "--workload-param",
                    "ec_ratio=0.25",
                    "--scale",
                    str(SCALE),
                    "breakdown",
                    "--level",
                    "3.1",
                    "--channels",
                    "2",
                ]
            )
            == 0
        )
        assert "Per-stage breakdown" in capsys.readouterr().out

    def test_bad_workload_param_syntax(self):
        with pytest.raises(SystemExit, match="NAME=VALUE"):
            main(
                [
                    "--workload",
                    "vvc_encoder",
                    "--workload-param",
                    "encoder_factor",
                    "fig3",
                ]
            )

    def test_bad_workload_param_value_is_loud(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="encoder_factor"):
            main(
                [
                    "--workload",
                    "vvc_encoder",
                    "--workload-param",
                    "encoder_factor=-1",
                    "fig3",
                ]
            )

    def test_fig3_runs_under_vvc(self, capsys):
        assert (
            main(["--workload", "vvc_encoder", "--scale", str(SCALE), "fig3"])
            == 0
        )
        assert "Fig. 3" in capsys.readouterr().out

    def test_explore_accepts_workload(self, capsys):
        assert (
            main(
                [
                    "--workload",
                    "vdcm_display",
                    "--scale",
                    str(SCALE),
                    "explore",
                    "--level",
                    "3.1",
                ]
            )
            == 0
        )
        assert "Design exploration" in capsys.readouterr().out
