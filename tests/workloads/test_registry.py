"""Tests for :mod:`repro.workloads.registry`."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.registry import (
    available_workloads,
    default_workload_name,
    get_workload,
    register_workload,
    resolve_workload,
    set_default_workload,
    unregister_workload,
    validate_workload_name,
)
from repro.workloads.spec import BoundWorkload, WorkloadSpec


class TestLookup:
    def test_builtins_listed(self):
        names = available_workloads()
        for expected in (
            "h264_camcorder",
            "vvc_encoder",
            "h264_lossy_ec",
            "vdcm_display",
        ):
            assert expected in names

    def test_get_is_cached(self):
        assert get_workload("vvc_encoder") is get_workload("vvc_encoder")

    def test_unknown_name_lists_registered(self):
        with pytest.raises(ConfigurationError, match="h264_camcorder"):
            get_workload("vcc_encoder")

    def test_non_string_rejected(self):
        with pytest.raises(ConfigurationError, match="registered workloads"):
            validate_workload_name(42)

    def test_default_is_the_paper_pipeline(self):
        assert default_workload_name() == "h264_camcorder"


class TestRegistration:
    def _custom(self, name="custom_wl"):
        spec = get_workload("vdcm_display")
        import dataclasses

        return dataclasses.replace(spec, name=name)

    def test_register_and_unregister(self):
        spec = self._custom()
        register_workload(spec)
        try:
            assert get_workload("custom_wl") is spec
            assert "custom_wl" in available_workloads()
        finally:
            unregister_workload("custom_wl")
        assert "custom_wl" not in available_workloads()

    def test_collision_refused_without_replace(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_workload(self._custom(name="h264_camcorder"))

    def test_replace_shadows_builtin(self):
        shadow = self._custom(name="h264_camcorder")
        register_workload(shadow, replace=True)
        try:
            assert get_workload("h264_camcorder") is shadow
        finally:
            unregister_workload("h264_camcorder")
        # The builtin reappears lazily.
        assert get_workload("h264_camcorder").name == "h264_camcorder"
        assert get_workload("h264_camcorder") is not shadow

    def test_non_spec_rejected(self):
        with pytest.raises(ConfigurationError, match="WorkloadSpec"):
            register_workload("h264_camcorder")

    def test_from_dict_round_trip_registers(self):
        payload = get_workload("h264_lossy_ec").to_dict()
        payload["name"] = "json_loaded"
        spec = WorkloadSpec.from_dict(payload)
        register_workload(spec)
        try:
            assert resolve_workload("json_loaded").name == "json_loaded"
        finally:
            unregister_workload("json_loaded")


class TestDefault:
    def test_set_default_round_trips(self):
        previous = set_default_workload("vvc_encoder")
        try:
            assert default_workload_name() == "vvc_encoder"
            assert resolve_workload().name == "vvc_encoder"
        finally:
            set_default_workload(previous)
        assert default_workload_name() == "h264_camcorder"

    def test_set_default_validates(self):
        with pytest.raises(ConfigurationError):
            set_default_workload("nope")


class TestResolve:
    def test_none_resolves_default(self):
        bound = resolve_workload()
        assert isinstance(bound, BoundWorkload)
        assert bound.name == "h264_camcorder"

    def test_name_resolves(self):
        assert resolve_workload("vvc_encoder").name == "vvc_encoder"

    def test_spec_resolves(self):
        spec = get_workload("vdcm_display")
        assert resolve_workload(spec).spec is spec

    def test_bound_passes_through(self):
        bound = resolve_workload("vvc_encoder")
        assert resolve_workload(bound) is bound

    def test_params_layer_on_bound(self):
        bound = resolve_workload("vvc_encoder", {"encoder_factor": 9.0})
        assert bound.param_dict()["encoder_factor"] == 9.0
        layered = resolve_workload(bound, {"intra_only": True})
        assert layered.param_dict()["encoder_factor"] == 9.0
        assert layered.param_dict()["intra_only"] is True

    def test_bad_params_are_loud(self):
        with pytest.raises(ConfigurationError, match="typo"):
            resolve_workload("vvc_encoder", {"typo": 1})

    def test_bad_type_rejected(self):
        with pytest.raises(ConfigurationError, match="BoundWorkload"):
            resolve_workload(3.14)
