"""Tests for the workload expression evaluator
(:mod:`repro.workloads.expr`)."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.expr import evaluate, validate_symbols


class TestEvaluate:
    def test_arithmetic(self):
        env = {"n": 10, "k": 3.0}
        assert evaluate("n * 12", env) == 120
        assert evaluate("n + k", env) == 13.0
        assert evaluate("n - k", env) == 7.0
        assert evaluate("n / 4", env) == 2.5
        assert evaluate("n // 4", env) == 2
        assert evaluate("n % 4", env) == 2
        assert evaluate("2 ** 10", env) == 1024

    def test_precedence_and_parens(self):
        assert evaluate("(2 + 3) * 4", {}) == 20
        assert evaluate("2 + 3 * 4", {}) == 14

    def test_functions(self):
        assert evaluate("min(3, 7)", {}) == 3
        assert evaluate("max(3, 7)", {}) == 7
        assert evaluate("abs(-2.5)", {}) == 2.5
        assert evaluate("round(2.5)", {}) == 2
        assert evaluate("round(3.5)", {}) == 4  # banker's, like Python
        assert evaluate("int(2.9)", {}) == 2
        assert evaluate("float(2)", {}) == 2.0
        assert evaluate("ceil(2.1)", {}) == 3
        assert evaluate("floor(2.9)", {}) == 2

    def test_conditional_and_bool(self):
        env = {"intra_only": True, "x": 5}
        assert evaluate("0 if intra_only else x", env) == 0
        assert evaluate("x if not intra_only else 0", env) == 0
        assert evaluate("x > 3 and x < 10", env) is True
        assert evaluate("1 <= x <= 5", env) is True

    def test_unknown_symbol_lists_known(self):
        with pytest.raises(ConfigurationError, match="frame_width"):
            evaluate("typo_symbol", {"frame_width": 1})

    def test_unknown_function_rejected(self):
        with pytest.raises(ConfigurationError, match="pow"):
            evaluate("pow(2, 3)", {})

    def test_attribute_access_rejected(self):
        with pytest.raises(ConfigurationError):
            evaluate("().__class__", {})

    def test_syntax_error_rejected(self):
        with pytest.raises(ConfigurationError):
            evaluate("1 +", {})

    def test_division_by_zero_is_loud(self):
        with pytest.raises(ConfigurationError, match="divides by zero"):
            evaluate("1 / (n - n)", {"n": 3})

    def test_nonfinite_rejected(self):
        with pytest.raises(ConfigurationError):
            evaluate("1e308 * 1e308", {})


class TestValidateSymbols:
    def test_returns_referenced_names(self):
        assert validate_symbols("a * b + min(a, c)") == ("a", "b", "c")

    def test_rejects_statements(self):
        with pytest.raises(ConfigurationError):
            validate_symbols("x = 1")

    def test_non_whitelisted_call_rejected_at_evaluation(self):
        # Structurally a call-to-a-name parses, but evaluation only
        # ever dispatches to the whitelist -- nothing else is callable.
        with pytest.raises(ConfigurationError):
            evaluate("__import__('os')", {"__import__": 1})

    def test_rejects_lambdas(self):
        with pytest.raises(ConfigurationError):
            validate_symbols("(lambda: 1)()")

    def test_rejects_subscripts(self):
        with pytest.raises(ConfigurationError):
            validate_symbols("a[0]")
