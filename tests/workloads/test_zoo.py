"""Invariant tests over every builtin zoo spec, plus the exactness
pin: ``h264_camcorder`` must reproduce the legacy imperative pipeline
bit for bit (the contract that keeps ``verify-paper`` exact)."""

import pytest

from repro.usecase.audio import AudioStream
from repro.usecase.levels import FUTURE_LEVELS, PAPER_LEVELS
from repro.usecase.pipeline import VideoRecordingUseCase
from repro.workloads.registry import _BUILTIN, get_workload

ALL_LEVELS = PAPER_LEVELS + FUTURE_LEVELS
ZOO = sorted(_BUILTIN)


@pytest.mark.parametrize("name", ZOO)
@pytest.mark.parametrize("level", ALL_LEVELS, ids=lambda lv: lv.name)
class TestZooInvariants:
    def test_oracles_hold(self, name, level):
        instance = get_workload(name).instantiate(level)
        assert instance.check_traffic_oracles() == []

    def test_traffic_positive_and_buffers_sane(self, name, level):
        instance = get_workload(name).instantiate(level)
        assert instance.total_bits_per_frame() > 0
        assert instance.bandwidth_bytes_per_s() > 0
        buffers = instance.buffers()
        assert buffers
        assert all(b.size_bytes > 0 for b in buffers)
        names = [b.name for b in buffers]
        assert len(set(names)) == len(names)

    def test_stage_traffic_references_declared_buffers(self, name, level):
        instance = get_workload(name).instantiate(level)
        declared = {b.name for b in instance.buffers()}
        for stage in instance.stages():
            for buffer_name, _ in stage.reads + stage.writes:
                assert buffer_name in declared

    def test_metrics_evaluate(self, name, level):
        instance = get_workload(name).instantiate(level)
        for value in instance.metrics().values():
            assert value == value  # finite, not NaN


@pytest.mark.parametrize("name", ZOO)
class TestZooIntraVariants:
    def test_intra_never_exceeds_inter(self, name):
        """Where a spec models I-frames, dropping reference reads can
        only reduce traffic."""
        spec = get_workload(name)
        if spec.gop.intra_param is None:
            pytest.skip("spec has no intra variant")
        level = PAPER_LEVELS[0]
        bound = spec.bind()
        intra = bound.intra_variant(True).instantiate(level)
        inter = bound.intra_variant(False).instantiate(level)
        assert intra.total_bits_per_frame() <= inter.total_bits_per_frame()

    def test_gop_length_sane(self, name):
        assert get_workload(name).gop.length >= 1


class TestCamcorderExactness:
    """The tentpole contract: the declarative ``h264_camcorder``
    reproduces the legacy imperative formulas *bit for bit* across
    every level and both frame variants."""

    @pytest.mark.parametrize("level", ALL_LEVELS, ids=lambda lv: lv.name)
    @pytest.mark.parametrize("intra_only", (False, True))
    def test_bit_identical_to_legacy(self, level, intra_only):
        legacy = VideoRecordingUseCase(level, intra_only=intra_only)
        spec = get_workload("h264_camcorder").instantiate(
            level, intra_only=intra_only
        )
        assert [
            (b.name, b.size_bytes) for b in spec.buffers()
        ] == [(b.name, b.size_bytes) for b in legacy.buffers()]
        legacy_stages = legacy.stages()
        spec_stages = spec.stages()
        assert len(spec_stages) == len(legacy_stages)
        for ours, theirs in zip(spec_stages, legacy_stages):
            assert ours.name == theirs.name
            assert ours.category == theirs.category
            assert ours.reads == theirs.reads
            assert ours.writes == theirs.writes
        assert spec.total_bits_per_frame() == legacy.total_bits_per_frame()
        assert (
            spec.image_processing_bits_per_frame()
            == legacy.image_processing_bits_per_frame()
        )
        assert (
            spec.video_coding_bits_per_frame()
            == legacy.video_coding_bits_per_frame()
        )
        assert spec.bandwidth_bytes_per_s() == legacy.bandwidth_bytes_per_s()

    def test_parameter_paths_stay_identical(self):
        """Non-default facade parameters route through the spec too."""
        level = PAPER_LEVELS[2]
        legacy = VideoRecordingUseCase(
            level,
            audio=AudioStream(bitrate_mbps=0.384),
            digizoom=2.0,
            encoder_factor=8.0,
            stabilization_border=1.1,
        )
        spec = get_workload("h264_camcorder").instantiate(
            level,
            audio_bitrate_mbps=0.384,
            digizoom=2.0,
            encoder_factor=8.0,
            stabilization_border=1.1,
        )
        assert spec.total_bits_per_frame() == legacy.total_bits_per_frame()
        assert [(b.name, b.size_bytes) for b in spec.buffers()] == [
            (b.name, b.size_bytes) for b in legacy.buffers()
        ]

    def test_facade_delegates_to_workload(self):
        use_case = VideoRecordingUseCase(PAPER_LEVELS[0])
        assert use_case.workload.spec.name == "h264_camcorder"
        assert (
            use_case.total_bits_per_frame()
            == use_case.workload.total_bits_per_frame()
        )


class TestZooCharacter:
    """Loose magnitude checks that keep each zoo spec meaning what its
    docstring claims (a regression here means someone changed the
    modelled workload, not a formula typo)."""

    def test_vvc_heavier_than_camcorder(self):
        level = PAPER_LEVELS[2]
        vvc = get_workload("vvc_encoder").instantiate(level)
        camcorder = get_workload("h264_camcorder").instantiate(level)
        assert vvc.total_bits_per_frame() > camcorder.total_bits_per_frame()

    def test_lossy_ec_saves_traffic(self):
        level = PAPER_LEVELS[2]
        lossy = get_workload("h264_lossy_ec").instantiate(level, ec_ratio=0.5)
        full = get_workload("h264_lossy_ec").instantiate(level, ec_ratio=1.0)
        assert lossy.total_bits_per_frame() < full.total_bits_per_frame()
        assert lossy.metric("quality_cost_db") > 0
        assert full.metric("quality_cost_db") == 0

    def test_vdcm_is_display_bound(self):
        """The display-stream decoder is far lighter than any encoder
        and has no I/P structure (flat GOP)."""
        level = PAPER_LEVELS[2]
        vdcm = get_workload("vdcm_display").instantiate(level)
        camcorder = get_workload("h264_camcorder").instantiate(level)
        assert vdcm.total_bits_per_frame() < camcorder.total_bits_per_frame()
        spec = get_workload("vdcm_display")
        assert spec.gop.intra_param is None
