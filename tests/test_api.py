"""Public-API surface tests: everything the README and examples use
must be importable from the top-level package."""

import repro


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export {name}"

    def test_quickstart_flow(self):
        """The README quickstart, verbatim in spirit."""
        level = repro.level_by_name("4")
        config = repro.SystemConfig(channels=4, freq_mhz=400.0)
        point = repro.simulate_use_case(level, config, chunk_budget=30_000)
        assert point.access_time_ms < level.frame_period_ms
        assert point.verdict is repro.RealTimeVerdict.PASS

    def test_key_constants(self):
        assert len(repro.PAPER_LEVELS) == 5
        assert repro.FORMAT_720P.pixels == 921_600
        assert repro.XDR_CELL_BE.power_w == 5.0
        assert repro.NEXT_GEN_MOBILE_DDR.geometry.banks == 4

    def test_subpackage_docstrings(self):
        import repro.analysis
        import repro.controller
        import repro.core
        import repro.dram
        import repro.load
        import repro.power
        import repro.usecase

        for module in (
            repro,
            repro.analysis,
            repro.controller,
            repro.core,
            repro.dram,
            repro.load,
            repro.power,
            repro.usecase,
        ):
            assert module.__doc__
