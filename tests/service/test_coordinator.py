"""Tests for the sharded sweep service
(:mod:`repro.service.coordinator` / :mod:`repro.service.executor`)."""

import asyncio

import pytest

from repro.analysis.sweep import sweep_use_case
from repro.core.config import SystemConfig
from repro.errors import ConfigurationError, WorkerError
from repro.regression.fuzzer import _diff_exact
from repro.resilience import SweepCheckpoint, faults
from repro.resilience.report import JobFailure
from repro.service import (
    LocalExecutor,
    SweepCoordinator,
    WorkUnit,
    partition,
    run_service_sweep,
)
from repro.service.cache import ResultCache
from repro.telemetry import Telemetry
from repro.usecase.levels import level_by_name

SCALE = 1 / 256
LEVELS = [level_by_name("3.1")]
CONFIGS = [
    SystemConfig(channels=1),
    SystemConfig(channels=2),
    SystemConfig(channels=4),
]


class TestPartition:
    def test_contiguous_slices_in_order(self):
        units = partition([10, 11, 12, 13, 14], list("abcde"), shard_size=2)
        assert [unit.unit_id for unit in units] == [0, 1, 2]
        assert [unit.positions for unit in units] == [(10, 11), (12, 13), (14,)]
        assert [unit.jobs for unit in units] == [("a", "b"), ("c", "d"), ("e",)]

    def test_shard_size_validated(self):
        with pytest.raises(ConfigurationError):
            partition([0], ["a"], shard_size=0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            partition([0, 1], ["a"], shard_size=2)

    def test_empty_unit_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkUnit(unit_id=0, positions=(), jobs=())

    def test_unit_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkUnit(unit_id=0, positions=(0,), jobs=("a", "b"))


class TestLocalExecutor:
    def test_outcomes_in_unit_order_with_local_callbacks(self):
        unit = WorkUnit(unit_id=0, positions=(5, 6, 7), jobs=(3, 1, 2))
        seen = []
        outcomes = LocalExecutor().execute(
            lambda job: job * 10,
            unit,
            on_result=lambda local, value: seen.append((local, value)),
        )
        assert outcomes == [30, 10, 20]
        assert sorted(seen) == [(0, 30), (1, 10), (2, 20)]

    def test_failures_captured_not_raised(self):
        unit = WorkUnit(unit_id=0, positions=(0, 1), jobs=(1, 0))

        def invert(job):
            return 1 // job

        outcomes = LocalExecutor().execute(invert, unit)
        assert outcomes[0] == 1
        assert isinstance(outcomes[1], JobFailure)

    def test_describe_names_configuration(self):
        text = LocalExecutor(workers=3, point_timeout=2.0).describe()
        assert "workers=3" in text
        assert "point_timeout=2" in text


class TestCoordinator:
    def test_bit_identical_to_engine_sweep(self):
        reference = sweep_use_case(LEVELS, CONFIGS, scale=SCALE)
        service = run_service_sweep(LEVELS, CONFIGS, scale=SCALE, shard_size=2)
        assert len(service) == len(reference) == 3
        for a, b in zip(reference, service):
            assert (a.config, a.level) == (b.config, b.level)
            assert _diff_exact(a.result, b.result) == []
            assert a.power == b.power

    def test_shard_size_one_many_inflight_same_answer(self):
        reference = run_service_sweep(LEVELS, CONFIGS, scale=SCALE)
        sharded = run_service_sweep(
            LEVELS, CONFIGS, scale=SCALE, shard_size=1, max_inflight=3
        )
        assert [p.access_time_ms for p in sharded] == [
            p.access_time_ms for p in reference
        ]

    def test_warm_cache_serves_grid(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cold = run_service_sweep(LEVELS, CONFIGS, scale=SCALE, cache=cache)
        warm = run_service_sweep(LEVELS, CONFIGS, scale=SCALE, cache=cache)
        assert cold.cached == 0
        assert warm.cached == 3
        assert [p.access_time_ms for p in warm] == [
            p.access_time_ms for p in cold
        ]

    def test_cache_shared_with_engine_sweep(self, tmp_path):
        """Points computed by sweep_use_case must be hits for the
        service (same canonical keys), and vice versa."""
        cache = ResultCache(tmp_path / "cache")
        sweep_use_case(LEVELS, CONFIGS, scale=SCALE, cache=cache)
        report = run_service_sweep(LEVELS, CONFIGS, scale=SCALE, cache=cache)
        assert report.cached == 3

    def test_checkpoint_resume(self, tmp_path):
        checkpoint = tmp_path / "sweep.ckpt"
        run_service_sweep(LEVELS, CONFIGS, scale=SCALE, checkpoint=checkpoint)
        assert len(SweepCheckpoint(checkpoint)) == 3
        resumed = run_service_sweep(
            LEVELS, CONFIGS, scale=SCALE, checkpoint=checkpoint
        )
        assert resumed.resumed == 3

    def test_strict_failure_raises_worker_error(self):
        with faults.injected(faults.FaultPlan(site="sweep", index=1, once=False)):
            with pytest.raises(WorkerError) as excinfo:
                run_service_sweep(LEVELS, CONFIGS, scale=SCALE)
        assert "channels" in str(excinfo.value)

    def test_graceful_degradation_and_no_failure_caching(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        with faults.injected(faults.FaultPlan(site="sweep", index=1, once=False)):
            report = run_service_sweep(
                LEVELS, CONFIGS, scale=SCALE, cache=cache, strict=False
            )
        assert len(report) == 2
        assert len(report.failures) == 1
        assert report.failures[0].coords["channels"] == CONFIGS[1].channels
        assert len(cache) == 2  # the failed point must not be cached
        healed = run_service_sweep(LEVELS, CONFIGS, scale=SCALE, cache=cache)
        assert healed.ok
        assert healed.cached == 2

    def test_telemetry_counts_units_and_points(self):
        telemetry = Telemetry.enabled()
        run_service_sweep(
            LEVELS, CONFIGS, scale=SCALE, shard_size=2, telemetry=telemetry
        )
        counters = telemetry.registry.as_dict()["counters"]
        assert counters["sweep.points_total"] == 3
        assert counters["sweep.points_completed"] == 3
        assert counters["service.units_total"] == 2
        assert counters["service.units_completed"] == 2

    def test_rejects_empty_grid(self):
        with pytest.raises(ConfigurationError):
            run_service_sweep([], CONFIGS)
        with pytest.raises(ConfigurationError):
            run_service_sweep(LEVELS, [])

    def test_max_inflight_validated(self):
        with pytest.raises(ConfigurationError):
            SweepCoordinator(max_inflight=0)

    def test_sync_wrapper_refuses_nested_loop(self):
        async def nested():
            return run_service_sweep(LEVELS, CONFIGS, scale=SCALE)

        with pytest.raises(ConfigurationError):
            asyncio.run(nested())

    def test_coordinator_awaitable_from_async_code(self):
        async def drive():
            coordinator = SweepCoordinator(shard_size=2)
            return await coordinator.run(LEVELS, CONFIGS, scale=SCALE)

        report = asyncio.run(drive())
        assert report.ok
        assert len(report) == 3
