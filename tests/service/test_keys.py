"""Tests for the canonical job-key module (:mod:`repro.keys`)."""

import enum
import json
import subprocess
import sys
from dataclasses import dataclass

import pytest

from repro.analysis.sweep import _job_description, job_keys
from repro.core.config import SystemConfig
from repro.keys import (
    ENGINE_VERSION,
    canonical_fragment,
    canonical_key,
    canonical_payload,
)
from repro.resilience.checkpoint import SweepCheckpoint
from repro.usecase.levels import level_by_name


@dataclass(frozen=True)
class _Sample:
    name: str
    value: int


class _Color(enum.Enum):
    RED = "red"
    BLUE = "blue"


class TestCanonicalFragment:
    def test_scalars_pass_through(self):
        assert canonical_fragment(None) is None
        assert canonical_fragment(True) is True
        assert canonical_fragment(7) == 7
        assert canonical_fragment("x") == "x"
        assert canonical_fragment(2.5) == 2.5

    def test_nonfinite_float_rejected(self):
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValueError):
                canonical_fragment(bad)

    def test_enum_projects_to_qualified_name(self):
        assert canonical_fragment(_Color.RED) == {
            "__enum__": "_Color",
            "name": "RED",
        }

    def test_dataclass_projects_fields_and_class(self):
        fragment = canonical_fragment(_Sample(name="a", value=3))
        assert fragment == {"name": "a", "value": 3, "__class__": "_Sample"}

    def test_set_is_order_free(self):
        assert canonical_fragment({3, 1, 2}) == [1, 2, 3]

    def test_non_string_dict_keys_rejected(self):
        with pytest.raises(ValueError):
            canonical_fragment({1: "x"})

    def test_fallback_is_tagged_repr(self):
        class Opaque:
            def __repr__(self):
                return "<opaque>"

        fragment = canonical_fragment(Opaque())
        assert fragment == {"__repr__": "<opaque>", "__class__": "Opaque"}


class TestCanonicalKey:
    def test_deterministic_within_process(self):
        description = {"kind": "x", "config": SystemConfig(channels=2)}
        assert canonical_key(description) == canonical_key(description)

    def test_payload_is_sorted_json_with_engine_version(self):
        payload = json.loads(canonical_payload({"a": 1}))
        assert payload["engine"] == ENGINE_VERSION
        assert payload["job"] == {"a": 1}

    def test_engine_version_changes_key(self):
        description = {"kind": "x"}
        assert canonical_key(description) != canonical_key(
            description, engine_version=ENGINE_VERSION + ".different"
        )

    def test_field_change_changes_key(self):
        base = SystemConfig(channels=2, freq_mhz=400.0)
        assert canonical_key(base) != canonical_key(base.with_frequency(200.0))
        assert canonical_key(base) != canonical_key(base.with_channels(4))

    def test_backend_change_changes_key(self):
        base = SystemConfig(channels=2)
        assert canonical_key(base) != canonical_key(base.with_backend("fast"))

    def test_stable_across_processes(self):
        """The key must be a pure content function -- no hash salting,
        no repr drift -- so a second process computes the same digest."""
        description = {
            "kind": "sweep-point",
            "config": SystemConfig(channels=4, freq_mhz=333.0),
            "level": level_by_name("3.1"),
        }
        script = (
            "from repro.keys import canonical_key\n"
            "from repro.core.config import SystemConfig\n"
            "from repro.usecase.levels import level_by_name\n"
            "print(canonical_key({'kind': 'sweep-point',"
            " 'config': SystemConfig(channels=4, freq_mhz=333.0),"
            " 'level': level_by_name('3.1')}))\n"
        )
        remote = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        assert remote == canonical_key(description)


class TestJobKeys:
    def _job(self, index, config, scale=0.125, workload=None):
        from repro.workloads.registry import resolve_workload

        return (
            index,
            level_by_name("3.1"),
            config,
            scale,
            60_000,
            64,
            resolve_workload(workload),
        )

    def test_grid_index_excluded(self):
        """The same configuration must share stored work no matter
        where it sits in which grid."""
        config = SystemConfig(channels=2)
        keys = job_keys([self._job(0, config), self._job(17, config)])
        assert keys[0] == keys[1]

    def test_distinct_configs_distinct_keys(self):
        keys = job_keys(
            [
                self._job(0, SystemConfig(channels=2)),
                self._job(1, SystemConfig(channels=4)),
            ]
        )
        assert keys[0] != keys[1]

    def test_scale_participates(self):
        config = SystemConfig(channels=2)
        a = job_keys([self._job(0, config, scale=0.125)])[0]
        b = job_keys([self._job(0, config, scale=0.25)])[0]
        assert a != b

    def test_description_surfaces_backend(self):
        description = _job_description(
            self._job(0, SystemConfig(channels=2, backend="fast"))
        )
        assert description["backend"] == "fast"
        assert "index" not in description

    def test_checkpoint_key_is_canonical_key(self):
        description = _job_description(self._job(0, SystemConfig(channels=2)))
        assert SweepCheckpoint.key_for(description) == canonical_key(description)

    def test_workloads_never_alias(self):
        """The same grid point under two different workloads must map
        to two different canonical keys: a cached vvc_encoder result
        served to a camcorder sweep would silently corrupt artifacts."""
        config = SystemConfig(channels=2)
        keys = {
            name: job_keys([self._job(0, config, workload=name)])[0]
            for name in (
                "h264_camcorder",
                "vvc_encoder",
                "h264_lossy_ec",
                "vdcm_display",
            )
        }
        assert len(set(keys.values())) == len(keys)

    def test_default_workload_matches_explicit_camcorder(self):
        """Legacy callers (no workload) and explicit camcorder callers
        must share stored work -- the default routes through the same
        spec."""
        config = SystemConfig(channels=2)
        implicit = job_keys([self._job(0, config)])[0]
        explicit = job_keys([self._job(0, config, workload="h264_camcorder")])[0]
        assert implicit == explicit

    def test_workload_params_participate(self):
        """Changing a spec parameter changes the key (the parameters
        are part of the bound identity)."""
        from repro.workloads.registry import resolve_workload

        config = SystemConfig(channels=2)
        base = resolve_workload("vvc_encoder")
        tweaked = base.with_params(encoder_factor=13.0)
        a = job_keys([self._job(0, config, workload=base)])[0]
        b = job_keys([self._job(0, config, workload=tweaked)])[0]
        assert a != b

    def test_workload_structure_participates(self):
        """Re-registering a name with different spec structure changes
        the key via the structure digest -- a name is not enough."""
        import dataclasses

        from repro.workloads.registry import (
            get_workload,
            register_workload,
            resolve_workload,
            unregister_workload,
        )

        config = SystemConfig(channels=2)
        original = resolve_workload("vdcm_display")
        spec = get_workload("vdcm_display")
        mutated = dataclasses.replace(spec, stages=spec.stages[:-1])
        register_workload(mutated, replace=True)
        try:
            shadowed = resolve_workload("vdcm_display")
            a = job_keys([self._job(0, config, workload=original)])[0]
            b = job_keys([self._job(0, config, workload=shadowed)])[0]
            assert a != b
        finally:
            unregister_workload("vdcm_display")
