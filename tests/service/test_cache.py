"""Tests for the content-addressed result cache
(:mod:`repro.service.cache`)."""

import os
import subprocess
import sys

import pytest

from repro.analysis.sweep import sweep_use_case
from repro.core.config import SystemConfig
from repro.regression.fuzzer import _diff_exact
from repro.resilience import faults
from repro.resilience.report import JobFailure
from repro.service.cache import CacheWarning, ResultCache, resolve_cache
from repro.telemetry import Telemetry
from repro.usecase.levels import level_by_name

KEY = "a" * 64
SCALE = 1 / 256


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestRoundTrip:
    def test_put_get(self, cache):
        cache.put(KEY, {"answer": 42}, coords={"channels": 2})
        assert cache.get(KEY) == {"answer": 42}
        stats = cache.stats()
        assert stats["writes"] == 1
        assert stats["hits"] == 1
        assert stats["misses"] == 0

    def test_missing_key_is_a_miss(self, cache):
        assert cache.get(KEY) is None
        assert cache.stats()["misses"] == 1

    def test_contains_is_stat_neutral(self, cache):
        assert not cache.contains(KEY)
        cache.put(KEY, 1)
        assert cache.contains(KEY)
        assert cache.stats()["hits"] == 0
        assert cache.stats()["misses"] == 0

    def test_len_and_clear(self, cache):
        cache.put(KEY, 1)
        cache.put("b" * 64, 2)
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0

    def test_malformed_key_rejected(self, cache):
        for bad in ("", "../escape", "a/b", "a\\b"):
            with pytest.raises(ValueError):
                cache.entry_path(bad)

    def test_resolve_cache(self, tmp_path, cache):
        assert resolve_cache(None) is None
        assert resolve_cache(cache) is cache
        built = resolve_cache(tmp_path / "other")
        assert isinstance(built, ResultCache)


class TestFailurePolicy:
    def test_job_failure_refused(self, cache):
        failure = JobFailure(
            index=0,
            item="job",
            error_type="SimulationError",
            message="boom",
            traceback="",
        )
        with pytest.raises(ValueError):
            cache.put(KEY, failure)
        assert len(cache) == 0

    def test_unwritable_directory_degrades_to_warning(self, tmp_path):
        target = tmp_path / "blocked"
        target.write_text("a file, not a directory")
        store = ResultCache(target)
        with pytest.warns(CacheWarning):
            store.put(KEY, {"x": 1})
        assert store.stats()["writes"] == 0


class TestCorruption:
    def _put_one(self, cache):
        cache.put(KEY, {"x": 1})
        return cache.entry_path(KEY)

    def test_truncated_entry_degrades_and_self_heals(self, cache):
        path = self._put_one(cache)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.warns(CacheWarning):
            assert cache.get(KEY) is None
        stats = cache.stats()
        assert stats["corrupt"] == 1
        assert stats["misses"] == 1
        # The damaged entry deletes itself, so it cannot warn forever.
        assert not path.exists()

    def test_garbage_entry_degrades(self, cache):
        path = cache.entry_path(KEY)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not a cache entry at all")
        with pytest.warns(CacheWarning):
            assert cache.get(KEY) is None
        assert cache.stats()["corrupt"] == 1

    def test_headerless_blob_degrades(self, cache):
        path = cache.entry_path(KEY)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"no newline anywhere")
        with pytest.warns(CacheWarning):
            assert cache.get(KEY) is None

    def test_entry_under_wrong_key_degrades(self, cache):
        self._put_one(cache)
        other = "b" * 64
        os.replace(cache.entry_path(KEY), cache.entry_path(other))
        with pytest.warns(CacheWarning):
            assert cache.get(other) is None

    def test_nothing_raises_out_of_get(self, cache):
        path = self._put_one(cache)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF  # bit rot in the payload
        path.write_bytes(bytes(raw))
        with pytest.warns(CacheWarning):
            assert cache.get(KEY) is None


class TestEviction:
    def test_bound_enforced_oldest_first(self, tmp_path):
        store = ResultCache(tmp_path / "cache", max_entries=2)
        keys = ["a" * 64, "b" * 64, "c" * 64]
        for index, key in enumerate(keys):
            store.put(key, index)
            entry = store.entry_path(key)
            # mtime granularity on some filesystems is coarse; force a
            # strictly increasing write order for the LRW eviction.
            os.utime(entry, (1000.0 + index, 1000.0 + index))
        assert len(store) == 2
        assert store.stats()["evictions"] == 1
        assert not store.contains(keys[0])
        assert store.contains(keys[1]) and store.contains(keys[2])

    def test_bound_validated(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path, max_entries=0)

    def test_same_tick_ties_evict_deterministically(self, tmp_path):
        # A grid written within one filesystem clock tick: every entry
        # carries the *identical* mtime, so the write-time order is all
        # ties.  Eviction must still pick the same victims on every run
        # -- the entry name (the content key) breaks ties -- and must
        # not depend on insertion or directory-listing order.
        keys = [ch * 64 for ch in "fbdace"]
        expected_survivors = sorted(keys)[3:]
        tick_ns = 1_700_000_000_000_000_000
        for run, order in enumerate((keys, list(reversed(keys)))):
            store = ResultCache(tmp_path / f"cache{run}")
            for index, key in enumerate(order):
                store.put(key, index)
            for key in order:
                os.utime(store.entry_path(key), ns=(tick_ns, tick_ns))
            store._evict_over(3)
            assert store.stats()["evictions"] == 3
            kept = sorted(key for key in keys if store.contains(key))
            assert kept == expected_survivors


class TestSweepIntegration:
    LEVELS = [level_by_name("3.1")]
    CONFIGS = [SystemConfig(channels=1), SystemConfig(channels=2)]

    def test_warm_cache_serves_every_point_bit_identically(self, tmp_path):
        fresh = sweep_use_case(self.LEVELS, self.CONFIGS, scale=SCALE)
        cold = sweep_use_case(
            self.LEVELS, self.CONFIGS, scale=SCALE, cache=tmp_path / "cache"
        )
        warm = sweep_use_case(
            self.LEVELS, self.CONFIGS, scale=SCALE, cache=tmp_path / "cache"
        )
        assert cold.cached == 0
        assert warm.cached == len(warm) == 2
        for a, b in zip(fresh, warm):
            # The fuzzer's exact comparator: any field-level divergence
            # between a cached and a freshly simulated result is a diff.
            assert _diff_exact(a.result, b.result) == []
            assert a.power == b.power and a.verdict == b.verdict

    def test_cross_process_hits(self, tmp_path):
        """A cache warmed by another process must serve this one."""
        cache_dir = tmp_path / "cache"
        script = (
            "from repro.analysis.sweep import sweep_use_case\n"
            "from repro.core.config import SystemConfig\n"
            "from repro.usecase.levels import level_by_name\n"
            "report = sweep_use_case([level_by_name('3.1')],"
            f" [SystemConfig(channels=1), SystemConfig(channels=2)],"
            f" scale={SCALE!r}, cache={str(cache_dir)!r})\n"
            "assert report.cached == 0, report.cached\n"
        )
        subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
        )
        warm = sweep_use_case(
            self.LEVELS, self.CONFIGS, scale=SCALE, cache=cache_dir
        )
        assert warm.cached == 2

    def test_changing_any_key_ingredient_misses(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        sweep_use_case(self.LEVELS, self.CONFIGS, scale=SCALE, cache=cache)
        # Different config field.
        report = sweep_use_case(
            self.LEVELS, [SystemConfig(channels=4)], scale=SCALE, cache=cache
        )
        assert report.cached == 0
        # Different backend, same grid.
        report = sweep_use_case(
            self.LEVELS,
            self.CONFIGS,
            scale=SCALE,
            cache=cache,
            backend="fast",
        )
        assert report.cached == 0
        # Same grid again: still warm (the misses above wrote entries,
        # they did not clobber the originals).
        report = sweep_use_case(
            self.LEVELS, self.CONFIGS, scale=SCALE, cache=cache
        )
        assert report.cached == 2

    def test_engine_version_changes_miss(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path / "cache")
        sweep_use_case(self.LEVELS, self.CONFIGS, scale=SCALE, cache=cache)
        import repro.keys as keys_module

        monkeypatch.setattr(keys_module, "ENGINE_VERSION", "999-test")
        report = sweep_use_case(
            self.LEVELS, self.CONFIGS, scale=SCALE, cache=cache
        )
        assert report.cached == 0

    def test_failed_points_never_cached(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        with faults.injected(faults.FaultPlan(site="sweep", index=0, once=False)):
            report = sweep_use_case(
                self.LEVELS,
                self.CONFIGS,
                scale=SCALE,
                cache=cache,
                strict=False,
            )
        assert len(report.failures) == 1
        assert len(cache) == 1  # only the healthy point landed
        # With the fault disarmed the failed point is recomputed, not
        # served: exactly one hit (the healthy point), one fresh write.
        report = sweep_use_case(
            self.LEVELS, self.CONFIGS, scale=SCALE, cache=cache
        )
        assert report.ok
        assert report.cached == 1

    def test_corrupt_entry_recomputed_and_rewritten(self, tmp_path):
        cache_dir = tmp_path / "cache"
        sweep_use_case(self.LEVELS, self.CONFIGS, scale=SCALE, cache=cache_dir)
        victim = sorted(cache_dir.glob("*.rc"))[0]
        victim.write_bytes(b"garbage")
        with pytest.warns(CacheWarning):
            report = sweep_use_case(
                self.LEVELS, self.CONFIGS, scale=SCALE, cache=cache_dir
            )
        assert report.ok
        assert report.cached == 1  # the intact entry still served
        # The recompute healed the store: fully warm again.
        report = sweep_use_case(
            self.LEVELS, self.CONFIGS, scale=SCALE, cache=cache_dir
        )
        assert report.cached == 2

    def test_foreign_payload_recomputed(self, tmp_path):
        """An entry holding something that is not a sweep point (e.g.
        written by other tooling under a colliding key) is recomputed,
        not trusted."""
        from repro.analysis.sweep import job_keys
        from repro.load.model import DEFAULT_BLOCK_BYTES
        from repro.load.scaling import DEFAULT_CHUNK_BUDGET
        from repro.workloads.registry import resolve_workload

        cache = ResultCache(tmp_path / "cache")
        workload = resolve_workload()
        jobs = [
            (
                index,
                self.LEVELS[0],
                config,
                SCALE,
                DEFAULT_CHUNK_BUDGET,
                DEFAULT_BLOCK_BYTES,
                workload,
            )
            for index, config in enumerate(self.CONFIGS)
        ]
        for key in job_keys(jobs):
            cache.put(key, {"not": "a sweep point"})
        with pytest.warns(CacheWarning):
            report = sweep_use_case(
                self.LEVELS, self.CONFIGS, scale=SCALE, cache=cache
            )
        assert report.ok
        assert report.cached == 0

    def test_telemetry_counters(self, tmp_path):
        cache_dir = tmp_path / "cache"
        telemetry = Telemetry.enabled()
        sweep_use_case(
            self.LEVELS,
            self.CONFIGS,
            scale=SCALE,
            cache=cache_dir,
            telemetry=telemetry,
        )
        counters = telemetry.registry.as_dict()["counters"]
        assert counters["cache.misses"] == 2
        assert counters["cache.hits"] == 0
        assert counters["sweep.points_cached"] == 0
        telemetry = Telemetry.enabled()
        sweep_use_case(
            self.LEVELS,
            self.CONFIGS,
            scale=SCALE,
            cache=cache_dir,
            telemetry=telemetry,
        )
        counters = telemetry.registry.as_dict()["counters"]
        assert counters["cache.hits"] == 2
        assert counters["cache.misses"] == 0
        assert counters["sweep.points_cached"] == 2

    def test_checkpoint_and_cache_enrich_each_other(self, tmp_path):
        from repro.resilience import SweepCheckpoint

        cache = ResultCache(tmp_path / "cache")
        checkpoint = tmp_path / "sweep.ckpt"
        # Warm the checkpoint only.
        sweep_use_case(
            self.LEVELS, self.CONFIGS, scale=SCALE, checkpoint=checkpoint
        )
        assert len(SweepCheckpoint(checkpoint)) == 2
        # Resuming with a cache attached copies the checkpointed
        # points into the cache...
        report = sweep_use_case(
            self.LEVELS,
            self.CONFIGS,
            scale=SCALE,
            checkpoint=checkpoint,
            cache=cache,
        )
        assert report.resumed == 2
        assert len(cache) == 2
        # ...and a cache-only run is now fully warm.
        report = sweep_use_case(
            self.LEVELS, self.CONFIGS, scale=SCALE, cache=cache
        )
        assert report.cached == 2
        # Conversely, cache hits are recorded into a fresh checkpoint.
        fresh_ckpt = tmp_path / "fresh.ckpt"
        report = sweep_use_case(
            self.LEVELS,
            self.CONFIGS,
            scale=SCALE,
            checkpoint=fresh_ckpt,
            cache=cache,
        )
        assert report.cached == 2
        assert len(SweepCheckpoint(fresh_ckpt)) == 2
