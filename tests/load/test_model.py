"""Tests for the video-recording load model."""

import pytest

from repro.controller.request import Op
from repro.errors import ConfigurationError
from repro.load.model import VideoRecordingLoadModel
from repro.usecase.levels import level_by_name
from repro.usecase.pipeline import VideoRecordingUseCase


@pytest.fixture
def load_720p30():
    return VideoRecordingLoadModel(VideoRecordingUseCase(level_by_name("3.1")))


class TestByteConservation:
    def test_frame_traffic_matches_use_case_total(self, load_720p30):
        """The transactions must carry the Table I per-frame bytes
        (within the 16-byte rounding the granularity imposes)."""
        txns = load_720p30.generate_frame(scale=1.0)
        total = sum(t.size for t in txns)
        expected = load_720p30.use_case.total_bytes_per_frame()
        assert total == pytest.approx(expected, rel=0.002)

    def test_read_write_split_matches_stages(self, load_720p30):
        txns = load_720p30.generate_frame(scale=1.0)
        reads = sum(t.size for t in txns if t.op is Op.READ)
        writes = sum(t.size for t in txns if t.op is Op.WRITE)
        uc = load_720p30.use_case
        expected_reads = sum(s.read_bits for s in uc.stages()) / 8
        expected_writes = sum(s.write_bits for s in uc.stages()) / 8
        assert reads == pytest.approx(expected_reads, rel=0.002)
        assert writes == pytest.approx(expected_writes, rel=0.002)

    @pytest.mark.parametrize("scale", [0.5, 0.25, 1 / 64])
    def test_scaled_traffic_proportional(self, load_720p30, scale):
        full = sum(t.size for t in load_720p30.generate_frame(scale=1.0))
        part = sum(t.size for t in load_720p30.generate_frame(scale=scale))
        assert part == pytest.approx(full * scale, rel=0.01)

    def test_multi_frame(self, load_720p30):
        one = sum(t.size for t in load_720p30.generate_frame())
        three = sum(t.size for t in load_720p30.generate_frames(3))
        assert three == pytest.approx(3 * one, rel=1e-6)


class TestTransactionShape:
    def test_block_size_respected(self, load_720p30):
        txns = load_720p30.generate_frame(scale=0.1)
        assert max(t.size for t in txns) <= load_720p30.block_bytes

    def test_all_transactions_16_byte_sized(self, load_720p30):
        txns = load_720p30.generate_frame(scale=0.1)
        assert all(t.size % 16 == 0 or t.size < 16 for t in txns)

    def test_addresses_inside_layout(self, load_720p30):
        span = load_720p30.address_map.total_span
        txns = load_720p30.generate_frame(scale=0.1)
        assert all(0 <= t.address and t.end_address <= span for t in txns)

    def test_reads_and_writes_interleave(self, load_720p30):
        """Copy-type stages must alternate read and write blocks, not
        read everything then write everything -- this drives the
        turnaround behaviour the multi-channel results depend on."""
        txns = load_720p30.generate_frame(scale=0.25)
        summary = load_720p30.summarize(txns)
        # Far more switches than stages (10), far fewer than
        # transactions.
        assert 50 < summary.rw_switches < summary.transactions

    def test_sequential_within_buffer(self, load_720p30):
        """Consecutive reads of one stage from one buffer advance
        sequentially -- "several memory accesses to sequential memory
        locations"."""
        txns = load_720p30.generate_frame(scale=0.1)
        sensor = load_720p30.address_map.region("sensor_raw")
        reads = [
            t for t in txns
            if t.op is Op.READ and sensor.base <= t.address < sensor.end
        ]
        assert len(reads) > 2
        for a, b in zip(reads, reads[1:]):
            assert b.address >= a.address  # monotone stream

    def test_deterministic(self, load_720p30):
        a = load_720p30.generate_frame(scale=0.2)
        b = load_720p30.generate_frame(scale=0.2)
        assert [(t.op, t.address, t.size) for t in a] == [
            (t.op, t.address, t.size) for t in b
        ]


class TestSummary:
    def test_summary_totals(self, load_720p30):
        txns = load_720p30.generate_frame(scale=0.1)
        s = load_720p30.summarize(txns)
        assert s.total_bytes == s.read_bytes + s.write_bytes
        assert s.transactions == len(txns)
        assert 0 < s.read_fraction < 1

    def test_summary_empty(self):
        s = VideoRecordingLoadModel.summarize([])
        assert s.total_bytes == 0
        assert s.read_fraction == 0.0

    def test_encoder_makes_traffic_read_heavy(self, load_720p30):
        # 6x reference reads dominate: the frame is mostly reads.
        s = load_720p30.summarize(load_720p30.generate_frame(scale=0.2))
        assert s.read_fraction > 0.55


class TestValidation:
    def test_rejects_bad_scale(self, load_720p30):
        with pytest.raises(ConfigurationError):
            load_720p30.generate_frame(scale=0.0)
        with pytest.raises(ConfigurationError):
            load_720p30.generate_frame(scale=1.5)

    def test_rejects_bad_block_bytes(self):
        uc = VideoRecordingUseCase(level_by_name("3.1"))
        with pytest.raises(ConfigurationError):
            VideoRecordingLoadModel(uc, block_bytes=100)

    def test_rejects_bad_frames(self, load_720p30):
        with pytest.raises(ConfigurationError):
            load_720p30.generate_frames(0)

    def test_frame_bytes_helper(self, load_720p30):
        assert load_720p30.frame_bytes(0.5) == pytest.approx(
            load_720p30.use_case.total_bytes_per_frame() / 2
        )
