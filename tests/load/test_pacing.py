"""Tests for paced (real-time) traffic arrival."""

import pytest

from repro.controller.request import MasterTransaction, Op
from repro.core.config import SystemConfig
from repro.core.system import MultiChannelMemorySystem
from repro.errors import ConfigurationError
from repro.load.model import VideoRecordingLoadModel
from repro.load.pacing import injection_rate_bytes_per_s, pace_transactions
from repro.power.report import compute_frame_power
from repro.usecase.levels import level_by_name
from repro.usecase.pipeline import VideoRecordingUseCase

SCALE = 1 / 32


def make_frame():
    load = VideoRecordingLoadModel(VideoRecordingUseCase(level_by_name("3.1")))
    return load.generate_frame(scale=SCALE)


class TestPaceTransactions:
    def test_arrivals_monotone_and_in_window(self):
        txns = make_frame()
        paced = pace_transactions(txns, frame_period_ms=33.333 * SCALE)
        arrivals = [t.arrival_ns for t in paced]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] == 0.0
        assert arrivals[-1] < 33.333 * SCALE * 1e6

    def test_duty_compresses_window(self):
        txns = make_frame()
        tight = pace_transactions(txns, 33.333 * SCALE, duty=0.5)
        loose = pace_transactions(txns, 33.333 * SCALE, duty=1.0)
        assert tight[-1].arrival_ns == pytest.approx(0.5 * loose[-1].arrival_ns)

    def test_payload_untouched(self):
        txns = make_frame()
        paced = pace_transactions(txns, 33.333 * SCALE)
        assert [(t.op, t.address, t.size) for t in paced] == [
            (t.op, t.address, t.size) for t in txns
        ]
        # Original list untouched.
        assert all(t.arrival_ns == 0.0 for t in txns)

    def test_empty_stream(self):
        assert pace_transactions([], 33.3) == []

    def test_validation(self):
        txns = [MasterTransaction(Op.READ, 0, 64)]
        with pytest.raises(ConfigurationError):
            pace_transactions(txns, 0.0)
        with pytest.raises(ConfigurationError):
            pace_transactions(txns, 33.3, duty=0.0)
        with pytest.raises(ConfigurationError):
            pace_transactions(txns, 33.3, duty=1.5)

    def test_injection_rate(self):
        txns = [MasterTransaction(Op.READ, 0, 1000)]
        rate = injection_rate_bytes_per_s(txns, frame_period_ms=1.0, duty=1.0)
        assert rate == pytest.approx(1e6)


class TestPacedSimulation:
    def test_paced_run_spans_the_injection_window(self):
        config = SystemConfig(channels=4, freq_mhz=400.0)
        system = MultiChannelMemorySystem(config)
        txns = make_frame()
        window_ms = 33.333 * SCALE

        backlogged = system.run(txns, scale=SCALE)
        paced = system.run(
            pace_transactions(txns, window_ms, duty=0.85), scale=SCALE
        )
        # Backlogged finishes as fast as the memory allows; paced is
        # gated by the injection window.
        assert paced.sample_access_time_ns > backlogged.sample_access_time_ns
        assert paced.sample_access_time_ns >= 0.8 * window_ms * 1e6 * 0.85

    def test_paced_run_powers_down_within_frame(self):
        # The gaps between paced bursts engage the immediate
        # power-down policy *inside* the frame.
        config = SystemConfig(channels=4, freq_mhz=400.0)
        system = MultiChannelMemorySystem(config)
        paced = system.run(
            pace_transactions(make_frame(), 33.333 * SCALE), scale=SCALE
        )
        counters = paced.merged_counters()
        assert counters.power_down_entries > 10
        assert paced.merged_states().active_powerdown_ns > 0

    def test_paced_energy_close_to_backlogged(self):
        # Same traffic, same frame period: the frame energy must be
        # nearly identical whether idle time sits inside or after the
        # access burst (power-down either way).
        config = SystemConfig(channels=2, freq_mhz=400.0)
        system = MultiChannelMemorySystem(config)
        txns = make_frame()
        window_ms = 33.333 * SCALE

        backlogged = system.run(txns, scale=SCALE)
        paced = system.run(pace_transactions(txns, window_ms), scale=SCALE)
        e_back = compute_frame_power(config, backlogged, 33.333).energy_per_frame_j
        e_paced = compute_frame_power(config, paced, 33.333).energy_per_frame_j
        assert e_paced == pytest.approx(e_back, rel=0.15)
