"""Tests for transaction-stream merging."""

import pytest

from repro.controller.request import MasterTransaction, Op
from repro.errors import ConfigurationError
from repro.load.mixer import (
    interleave_backlogged,
    merge_by_arrival,
    streams_overlap,
)


def stream(base, n, size=64, arrival_step=0.0):
    return [
        MasterTransaction(Op.READ, base + i * size, size,
                          arrival_ns=i * arrival_step)
        for i in range(n)
    ]


class TestInterleaveBacklogged:
    def test_round_robin(self):
        a = stream(0, 3)
        b = stream(10_000, 3)
        merged = interleave_backlogged([a, b])
        assert merged == [a[0], b[0], a[1], b[1], a[2], b[2]]

    def test_uneven_lengths(self):
        a = stream(0, 4)
        b = stream(10_000, 1)
        merged = interleave_backlogged([a, b])
        assert len(merged) == 5
        assert merged[1] == b[0]
        assert merged[2:] == a[1:]

    def test_single_stream_identity(self):
        a = stream(0, 5)
        assert interleave_backlogged([a]) == a

    def test_preserves_per_master_order(self):
        a = stream(0, 10)
        b = stream(10_000, 7)
        merged = interleave_backlogged([a, b])
        a_order = [t for t in merged if t.address < 10_000]
        assert a_order == a

    def test_rejects_timed_streams(self):
        timed = stream(0, 2, arrival_step=10.0)
        with pytest.raises(ConfigurationError):
            interleave_backlogged([timed])

    def test_rejects_empty_input(self):
        with pytest.raises(ConfigurationError):
            interleave_backlogged([])


class TestMergeByArrival:
    def test_sorted_by_arrival(self):
        a = stream(0, 3, arrival_step=100.0)       # 0, 100, 200
        b = stream(10_000, 3, arrival_step=70.0)   # 0, 70, 140
        merged = merge_by_arrival([a, b])
        arrivals = [t.arrival_ns for t in merged]
        assert arrivals == sorted(arrivals)

    def test_per_master_order_kept_under_ties(self):
        a = stream(0, 5)  # all arrival 0
        b = stream(10_000, 5)
        merged = merge_by_arrival([a, b])
        assert [t for t in merged if t.address < 10_000] == a
        assert [t for t in merged if t.address >= 10_000] == b

    def test_deterministic_tie_break(self):
        a = stream(0, 2)
        b = stream(10_000, 2)
        assert merge_by_arrival([a, b]) == merge_by_arrival([a, b])

    def test_empty_streams_skipped(self):
        a = stream(0, 2)
        assert merge_by_arrival([a, []]) == a


class TestStreamsOverlap:
    def test_disjoint(self):
        assert not streams_overlap([stream(0, 4), stream(10_000, 4)])

    def test_overlapping(self):
        assert streams_overlap([stream(0, 10), stream(128, 4)])

    def test_empty_streams_ignored(self):
        assert not streams_overlap([stream(0, 2), []])


class TestMergedSimulation:
    def test_merged_stream_simulates(self):
        from repro.core.config import SystemConfig
        from repro.core.system import MultiChannelMemorySystem

        a = stream(0, 100, size=4096)
        b = stream(2**22, 50, size=4096)
        assert not streams_overlap([a, b])
        merged = interleave_backlogged([a, b])
        result = MultiChannelMemorySystem(SystemConfig(channels=2)).run(merged)
        assert result.sample_bytes == (100 + 50) * 4096
