"""Tests for synthetic traffic generators."""

import pytest

from repro.controller.request import Op
from repro.errors import ConfigurationError
from repro.load.generators import (
    alternating_rw_stream,
    random_stream,
    sequential_stream,
    strided_stream,
)


class TestSequential:
    def test_covers_exact_bytes(self):
        txns = sequential_stream(10_000, block_bytes=4096)
        assert sum(t.size for t in txns) == 10_000
        assert [t.size for t in txns] == [4096, 4096, 1808]

    def test_addresses_contiguous(self):
        txns = sequential_stream(16_384, block_bytes=4096, base_address=64)
        assert txns[0].address == 64
        for a, b in zip(txns, txns[1:]):
            assert b.address == a.end_address

    def test_op_respected(self):
        txns = sequential_stream(1024, op=Op.WRITE)
        assert all(t.op is Op.WRITE for t in txns)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            sequential_stream(0)
        with pytest.raises(ConfigurationError):
            sequential_stream(16, base_address=-1)


class TestStrided:
    def test_stride_applied(self):
        txns = strided_stream(4, stride_bytes=4096, access_bytes=64)
        assert [t.address for t in txns] == [0, 4096, 8192, 12288]
        assert all(t.size == 64 for t in txns)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            strided_stream(0, 4096)


class TestRandom:
    def test_deterministic_for_seed(self):
        a = random_stream(100, 2**20, seed=7)
        b = random_stream(100, 2**20, seed=7)
        assert [(t.op, t.address) for t in a] == [(t.op, t.address) for t in b]

    def test_different_seeds_differ(self):
        a = random_stream(100, 2**20, seed=1)
        b = random_stream(100, 2**20, seed=2)
        assert [t.address for t in a] != [t.address for t in b]

    def test_addresses_in_span(self):
        txns = random_stream(500, 2**16, access_bytes=64)
        assert all(0 <= t.address and t.end_address <= 2**16 for t in txns)

    def test_addresses_chunk_aligned(self):
        txns = random_stream(100, 2**20)
        assert all(t.address % 16 == 0 for t in txns)

    def test_read_fraction(self):
        reads = sum(
            1 for t in random_stream(2000, 2**20, read_fraction=0.8, seed=3)
            if t.op is Op.READ
        )
        assert 0.7 < reads / 2000 < 0.9

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            random_stream(10, 2**20, read_fraction=2.0)
        with pytest.raises(ConfigurationError):
            random_stream(10, 32, access_bytes=64)


class TestAlternating:
    def test_strict_alternation(self):
        txns = alternating_rw_stream(5, block_bytes=1024)
        assert [t.op for t in txns] == [Op.READ, Op.WRITE] * 5

    def test_regions_disjoint(self):
        txns = alternating_rw_stream(4, block_bytes=1024)
        reads = [t for t in txns if t.op is Op.READ]
        writes = [t for t in txns if t.op is Op.WRITE]
        assert max(t.end_address for t in reads) <= min(t.address for t in writes)

    def test_custom_write_base(self):
        txns = alternating_rw_stream(2, block_bytes=64, write_base=2**20)
        assert txns[1].address == 2**20
