"""Tests for the buffer address map."""

import pytest

from repro.errors import AddressError, ConfigurationError
from repro.load.addressmap import BUFFER_ALIGN, AddressMap, Region
from repro.usecase.pipeline import BufferSpec


def make_map():
    return AddressMap(
        [
            BufferSpec("a", 1000),
            BufferSpec("b", 4096),
            BufferSpec("c", 17),
        ]
    )


class TestLayout:
    def test_regions_aligned(self):
        amap = make_map()
        for region in amap.regions():
            assert region.base % BUFFER_ALIGN == 0

    def test_regions_do_not_overlap(self):
        regions = make_map().regions()
        for earlier, later in zip(regions, regions[1:]):
            assert earlier.end <= later.base

    def test_sizes_rounded_to_granules(self):
        amap = make_map()
        assert amap.region("a").size == 1008  # 1000 -> 16-aligned
        assert amap.region("c").size == 32

    def test_total_span_covers_everything(self):
        amap = make_map()
        assert amap.total_span >= max(r.end for r in amap.regions())

    def test_custom_base(self):
        amap = AddressMap([BufferSpec("x", 64)], base=BUFFER_ALIGN * 2)
        assert amap.region("x").base == BUFFER_ALIGN * 2

    def test_fits_in(self):
        amap = make_map()
        assert amap.fits_in(amap.total_span)
        assert not amap.fits_in(amap.total_span - 1)

    def test_contains(self):
        amap = make_map()
        assert "a" in amap
        assert "zzz" not in amap


class TestValidation:
    def test_rejects_duplicate_names(self):
        with pytest.raises(ConfigurationError):
            AddressMap([BufferSpec("a", 16), BufferSpec("a", 32)])

    def test_rejects_bad_alignment(self):
        with pytest.raises(ConfigurationError):
            AddressMap([BufferSpec("a", 16)], align=10)

    def test_rejects_misaligned_base(self):
        with pytest.raises(ConfigurationError):
            AddressMap([BufferSpec("a", 16)], base=7)

    def test_unknown_region_raises(self):
        with pytest.raises(AddressError):
            make_map().region("missing")


class TestRegion:
    def test_offset_address_in_range(self):
        region = Region("r", base=4096, size=256)
        assert region.offset_address(0) == 4096
        assert region.offset_address(255) == 4096 + 255

    def test_offset_address_wraps(self):
        # Streams larger than the buffer wrap: repeated passes over
        # the same frame (the encoder's 6x reference reads).
        region = Region("r", base=4096, size=256)
        assert region.offset_address(256) == 4096
        assert region.offset_address(300) == 4096 + 44

    def test_empty_region_rejected(self):
        with pytest.raises(AddressError):
            Region("r", base=0, size=0).offset_address(0)
