"""Tests for the static row-locality analyzer."""

import pytest

from repro.controller.mapping import AddressMultiplexing
from repro.controller.request import MasterTransaction, Op
from repro.core.config import SystemConfig
from repro.core.system import MultiChannelMemorySystem
from repro.dram.datasheet import NEXT_GEN_MOBILE_DDR
from repro.errors import ConfigurationError
from repro.load.generators import random_stream, sequential_stream
from repro.load.locality import compare_schemes, predict_locality
from repro.load.model import VideoRecordingLoadModel
from repro.usecase.levels import level_by_name
from repro.usecase.pipeline import VideoRecordingUseCase

GEO = NEXT_GEN_MOBILE_DDR.geometry


class TestPrediction:
    def test_sequential_high_hit_rate(self):
        txns = sequential_stream(2**20, block_bytes=4096)
        pred = predict_locality(txns, channels=1, geometry=GEO)
        # 1 MB over 4 KB rows: 256 activates over 65536 chunks.
        assert pred.total_chunks == 2**16
        assert pred.total_activates == 256
        assert pred.row_hit_rate > 0.99

    def test_random_low_hit_rate(self):
        # 64-byte random accesses: the 4 chunks inside each access hit,
        # but essentially every *access* opens a new row, so the hit
        # rate pins to ~3/4 -- far below sequential's ~1.
        txns = random_stream(5_000, 32 * 2**20, access_bytes=64, seed=1)
        pred = predict_locality(txns, channels=1, geometry=GEO)
        assert pred.row_hit_rate < 0.8
        assert pred.total_activates > 0.95 * 5_000

    def test_chunks_split_evenly_across_channels(self):
        txns = sequential_stream(2**18, block_bytes=4096)
        pred = predict_locality(txns, channels=4, geometry=GEO)
        assert len(set(pred.chunks_per_channel)) == 1

    def test_empty_stream(self):
        pred = predict_locality([], channels=2, geometry=GEO)
        assert pred.total_chunks == 0
        assert pred.row_hit_rate == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            predict_locality([], channels=0, geometry=GEO)

    def test_wraps_capacity_like_the_system(self):
        capacity = GEO.capacity_bytes  # single channel
        txn = MasterTransaction(Op.READ, capacity - 64, 128)  # straddles top
        pred = predict_locality([txn], channels=1, geometry=GEO)
        assert pred.total_chunks == 8


class TestEngineCrossValidation:
    """The prediction must match the engine exactly on refresh-free
    windows -- two independent implementations of the same state walk."""

    @pytest.mark.parametrize("channels", [1, 2, 4])
    @pytest.mark.parametrize(
        "scheme", list(AddressMultiplexing), ids=lambda s: s.value
    )
    def test_activates_match_engine(self, channels, scheme):
        import dataclasses

        # Small enough that no tREFI boundary is crossed on any
        # channel count (refresh would add re-activations).
        txns = sequential_stream(16 * 1024, block_bytes=4096)
        config = dataclasses.replace(
            SystemConfig(channels=channels, freq_mhz=400.0), multiplexing=scheme
        )
        sim = MultiChannelMemorySystem(config).run(txns)
        pred = predict_locality(txns, channels, GEO, scheme)
        # Short run: no refresh interference.
        assert sim.merged_counters().refreshes == 0
        assert sim.merged_counters().activates == pred.total_activates
        assert sim.row_hit_rate == pytest.approx(pred.row_hit_rate)

    def test_use_case_fragment_matches(self):
        load = VideoRecordingLoadModel(VideoRecordingUseCase(level_by_name("3.1")))
        txns = load.generate_frame(scale=1 / 256)
        config = SystemConfig(channels=2, freq_mhz=400.0)
        sim = MultiChannelMemorySystem(config).run(txns, scale=1 / 256)
        pred = predict_locality(txns, 2, GEO)
        refreshes = sim.merged_counters().refreshes
        measured = sim.merged_counters().activates
        # Engine adds at most geometry.banks re-activations per refresh.
        assert pred.total_activates <= measured
        assert measured <= pred.total_activates + refreshes * GEO.banks * 2


class TestCompareSchemes:
    def test_all_schemes_predicted(self):
        txns = sequential_stream(2**18, block_bytes=4096)
        preds = compare_schemes(txns, 2, GEO)
        assert set(preds) == set(AddressMultiplexing)

    def test_row_strided_prefers_xor(self):
        # Row-stride-1 walks within one RBC bank: XOR folding spreads
        # them and halves nothing -- activates are equal (every access
        # a new row) but the *banks* differ; verify via hit rates on a
        # mixed stride.
        txns = [
            MasterTransaction(Op.READ, i * 16384, 64) for i in range(200)
        ]
        preds = compare_schemes(txns, 1, GEO)
        rbc = preds[AddressMultiplexing.RBC]
        xor = preds[AddressMultiplexing.RBC_XOR]
        assert xor.total_activates <= rbc.total_activates
