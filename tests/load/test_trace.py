"""Tests for trace file reading and writing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.controller.request import MasterTransaction, Op
from repro.errors import TraceFormatError
from repro.load.trace import parse_trace_line, read_trace, write_trace

transactions_strategy = st.lists(
    st.builds(
        MasterTransaction,
        op=st.sampled_from([Op.READ, Op.WRITE]),
        address=st.integers(min_value=0, max_value=2**40),
        size=st.integers(min_value=1, max_value=2**20),
        arrival_ns=st.sampled_from([0.0, 12.5, 1000.0]),
    ),
    max_size=50,
)


class TestRoundTrip:
    def test_simple_round_trip(self, tmp_path):
        path = tmp_path / "t.trace"
        txns = [
            MasterTransaction(Op.READ, 0x1000, 4096),
            MasterTransaction(Op.WRITE, 0x2000, 64, arrival_ns=25.0),
        ]
        assert write_trace(path, txns) == 2
        back = read_trace(path)
        assert back == txns

    @given(transactions_strategy)
    @settings(max_examples=20, deadline=None)
    def test_round_trip_property(self, txns):
        import tempfile, os

        fd, path = tempfile.mkstemp(suffix=".trace")
        os.close(fd)
        try:
            write_trace(path, txns)
            assert read_trace(path) == txns
        finally:
            os.unlink(path)

    def test_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("# header\n\nR 0x10 16\n   \nW 32 16 5.0\n")
        txns = read_trace(path)
        assert len(txns) == 2
        assert txns[0].address == 16
        assert txns[1].arrival_ns == 5.0


class TestParsing:
    def test_hex_and_decimal_addresses(self):
        assert parse_trace_line("R 0x100 16").address == 256
        assert parse_trace_line("R 256 16").address == 256

    def test_case_insensitive_op(self):
        assert parse_trace_line("r 0 16").op is Op.READ
        assert parse_trace_line("w 0 16").op is Op.WRITE

    def test_bad_field_count(self):
        with pytest.raises(TraceFormatError):
            parse_trace_line("R 0x100")
        with pytest.raises(TraceFormatError):
            parse_trace_line("R 0 16 0.0 extra")

    def test_bad_op(self):
        with pytest.raises(TraceFormatError):
            parse_trace_line("X 0 16")

    def test_bad_number(self):
        with pytest.raises(TraceFormatError):
            parse_trace_line("R zz 16")

    def test_invalid_transaction_values(self):
        with pytest.raises(TraceFormatError):
            parse_trace_line("R 0 0")  # zero size

    def test_error_carries_line_number(self):
        with pytest.raises(TraceFormatError, match="line 7"):
            parse_trace_line("R nope 16", lineno=7)


class TestMalformedFiles:
    """Every malformed-input path must name the line number and quote
    the offending text, so a bad multi-megabyte trace is debuggable."""

    def test_too_few_fields(self):
        with pytest.raises(TraceFormatError) as excinfo:
            parse_trace_line("R 0x100", lineno=3)
        assert "line 3" in str(excinfo.value)
        assert "'R 0x100'" in str(excinfo.value)

    def test_too_many_fields(self):
        with pytest.raises(TraceFormatError) as excinfo:
            parse_trace_line("R 0 16 0.0 junk", lineno=9)
        assert "line 9" in str(excinfo.value)
        assert "'R 0 16 0.0 junk'" in str(excinfo.value)

    def test_unknown_op_names_the_op(self):
        with pytest.raises(TraceFormatError) as excinfo:
            parse_trace_line("Q 0 16", lineno=2)
        message = str(excinfo.value)
        assert "line 2" in message and "'Q'" in message

    def test_bad_address_quotes_line(self):
        with pytest.raises(TraceFormatError) as excinfo:
            parse_trace_line("R 0xGG 16", lineno=4)
        message = str(excinfo.value)
        assert "line 4" in message and "'R 0xGG 16'" in message

    def test_bad_size_quotes_line(self):
        with pytest.raises(TraceFormatError) as excinfo:
            parse_trace_line("W 0x10 sixteen", lineno=5)
        message = str(excinfo.value)
        assert "line 5" in message and "'W 0x10 sixteen'" in message

    def test_bad_arrival_quotes_line(self):
        with pytest.raises(TraceFormatError) as excinfo:
            parse_trace_line("W 0x10 16 soon", lineno=6)
        message = str(excinfo.value)
        assert "line 6" in message and "'W 0x10 16 soon'" in message

    def test_invalid_values_quote_line(self):
        with pytest.raises(TraceFormatError) as excinfo:
            parse_trace_line("R 0 0", lineno=8)  # zero size
        message = str(excinfo.value)
        assert "line 8" in message and "'R 0 0'" in message

    def test_truncated_file_reports_last_line(self, tmp_path):
        path = tmp_path / "truncated.trace"
        path.write_text("# header\nR 0x1000 4096\nW 0x2000 4096\nR 0x\n")
        with pytest.raises(TraceFormatError) as excinfo:
            read_trace(path)
        message = str(excinfo.value)
        assert "line 4" in message and "'R 0x'" in message

    def test_file_with_wrong_field_count_mid_stream(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("R 0x1000 4096\nW 0x2000\nR 0x3000 64\n")
        with pytest.raises(TraceFormatError) as excinfo:
            read_trace(path)
        message = str(excinfo.value)
        assert "line 2" in message and "'W 0x2000'" in message


class TestLoadModelTraces:
    def test_frame_trace_survives_round_trip(self, tmp_path):
        from repro.load.model import VideoRecordingLoadModel
        from repro.usecase.levels import level_by_name
        from repro.usecase.pipeline import VideoRecordingUseCase

        load = VideoRecordingLoadModel(VideoRecordingUseCase(level_by_name("3.1")))
        txns = load.generate_frame(scale=1 / 128)
        path = tmp_path / "frame.trace"
        write_trace(path, txns)
        assert read_trace(path) == txns
