"""Tests for trace file reading and writing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.controller.request import MasterTransaction, Op
from repro.errors import TraceFormatError
from repro.load.trace import parse_trace_line, read_trace, write_trace

transactions_strategy = st.lists(
    st.builds(
        MasterTransaction,
        op=st.sampled_from([Op.READ, Op.WRITE]),
        address=st.integers(min_value=0, max_value=2**40),
        size=st.integers(min_value=1, max_value=2**20),
        # None (backlogged, field omitted) alongside explicit stamps --
        # including 0.0, which must round-trip as a real timestamp --
        # and a float that needs repr() precision to survive.
        arrival_ns=st.sampled_from([None, 0.0, 12.5, 1000.0, 1670.5952745453149]),
    ),
    max_size=50,
)


class TestRoundTrip:
    def test_simple_round_trip(self, tmp_path):
        path = tmp_path / "t.trace"
        txns = [
            MasterTransaction(Op.READ, 0x1000, 4096),
            MasterTransaction(Op.WRITE, 0x2000, 64, arrival_ns=25.0),
        ]
        assert write_trace(path, txns) == 2
        back = read_trace(path)
        assert back == txns

    @given(transactions_strategy)
    @settings(max_examples=20, deadline=None)
    def test_round_trip_property(self, txns):
        import tempfile, os

        fd, path = tempfile.mkstemp(suffix=".trace")
        os.close(fd)
        try:
            write_trace(path, txns)
            assert read_trace(path) == txns
        finally:
            os.unlink(path)

    def test_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("# header\n\nR 0x10 16\n   \nW 32 16 5.0\n")
        txns = read_trace(path)
        assert len(txns) == 2
        assert txns[0].address == 16
        assert txns[1].arrival_ns == 5.0

    def test_explicit_zero_arrival_survives(self, tmp_path):
        # 0.0 is a real timestamp, not a missing field: it must be
        # written out and come back as 0.0, not as None.
        path = tmp_path / "t.trace"
        write_trace(path, [MasterTransaction(Op.READ, 0, 16, arrival_ns=0.0)])
        assert "R 0x0 16 0.0" in path.read_text()
        assert read_trace(path)[0].arrival_ns == 0.0

    def test_backlogged_arrival_omits_field(self, tmp_path):
        path = tmp_path / "t.trace"
        write_trace(path, [MasterTransaction(Op.READ, 0, 16, arrival_ns=None)])
        data_lines = [
            line
            for line in path.read_text().splitlines()
            if line and not line.startswith("#")
        ]
        assert data_lines == ["R 0x0 16"]
        assert read_trace(path)[0].arrival_ns is None

    @given(transactions_strategy)
    @settings(max_examples=20, deadline=None)
    def test_write_read_write_is_byte_identical(self, txns):
        import os
        import tempfile

        fd1, path1 = tempfile.mkstemp(suffix=".trace")
        fd2, path2 = tempfile.mkstemp(suffix=".trace")
        os.close(fd1)
        os.close(fd2)
        try:
            write_trace(path1, txns)
            write_trace(path2, read_trace(path1))
            with open(path1, "rb") as a, open(path2, "rb") as b:
                assert a.read() == b.read()
        finally:
            os.unlink(path1)
            os.unlink(path2)


class TestParsing:
    def test_hex_and_decimal_addresses(self):
        assert parse_trace_line("R 0x100 16").address == 256
        assert parse_trace_line("R 256 16").address == 256

    def test_case_insensitive_op(self):
        assert parse_trace_line("r 0 16").op is Op.READ
        assert parse_trace_line("w 0 16").op is Op.WRITE

    def test_bad_field_count(self):
        with pytest.raises(TraceFormatError):
            parse_trace_line("R 0x100")
        with pytest.raises(TraceFormatError):
            parse_trace_line("R 0 16 0.0 extra")

    def test_bad_op(self):
        with pytest.raises(TraceFormatError):
            parse_trace_line("X 0 16")

    def test_bad_number(self):
        with pytest.raises(TraceFormatError):
            parse_trace_line("R zz 16")

    def test_invalid_transaction_values(self):
        with pytest.raises(TraceFormatError):
            parse_trace_line("R 0 0")  # zero size

    def test_error_carries_line_number(self):
        with pytest.raises(TraceFormatError, match="line 7"):
            parse_trace_line("R nope 16", lineno=7)

    @pytest.mark.parametrize(
        "stamp", ["nan", "NaN", "inf", "-inf", "Infinity", "1e999"]
    )
    def test_non_finite_arrival_rejected(self, stamp):
        # float() happily parses every one of these spellings (1e999
        # overflows to inf), and NaN beats any < 0 range check because
        # every NaN comparison is False -- the parser must test
        # isfinite explicitly.
        with pytest.raises(TraceFormatError, match="finite"):
            parse_trace_line(f"R 0x100 16 {stamp}", lineno=3)

    def test_negative_arrival_rejected(self):
        with pytest.raises(TraceFormatError, match="arrival_ns"):
            parse_trace_line("R 0x100 16 -1.0", lineno=4)

    def test_negative_address_rejected_with_line(self):
        with pytest.raises(TraceFormatError, match="line 5"):
            parse_trace_line("R -16 16", lineno=5)

    def test_negative_size_rejected_with_line(self):
        with pytest.raises(TraceFormatError, match="line 6"):
            parse_trace_line("R 0x10 -4", lineno=6)


class TestMalformedFiles:
    """Every malformed-input path must name the line number and quote
    the offending text, so a bad multi-megabyte trace is debuggable."""

    def test_too_few_fields(self):
        with pytest.raises(TraceFormatError) as excinfo:
            parse_trace_line("R 0x100", lineno=3)
        assert "line 3" in str(excinfo.value)
        assert "'R 0x100'" in str(excinfo.value)

    def test_too_many_fields(self):
        with pytest.raises(TraceFormatError) as excinfo:
            parse_trace_line("R 0 16 0.0 junk", lineno=9)
        assert "line 9" in str(excinfo.value)
        assert "'R 0 16 0.0 junk'" in str(excinfo.value)

    def test_unknown_op_names_the_op(self):
        with pytest.raises(TraceFormatError) as excinfo:
            parse_trace_line("Q 0 16", lineno=2)
        message = str(excinfo.value)
        assert "line 2" in message and "'Q'" in message

    def test_bad_address_quotes_line(self):
        with pytest.raises(TraceFormatError) as excinfo:
            parse_trace_line("R 0xGG 16", lineno=4)
        message = str(excinfo.value)
        assert "line 4" in message and "'R 0xGG 16'" in message

    def test_bad_size_quotes_line(self):
        with pytest.raises(TraceFormatError) as excinfo:
            parse_trace_line("W 0x10 sixteen", lineno=5)
        message = str(excinfo.value)
        assert "line 5" in message and "'W 0x10 sixteen'" in message

    def test_bad_arrival_quotes_line(self):
        with pytest.raises(TraceFormatError) as excinfo:
            parse_trace_line("W 0x10 16 soon", lineno=6)
        message = str(excinfo.value)
        assert "line 6" in message and "'W 0x10 16 soon'" in message

    def test_invalid_values_quote_line(self):
        with pytest.raises(TraceFormatError) as excinfo:
            parse_trace_line("R 0 0", lineno=8)  # zero size
        message = str(excinfo.value)
        assert "line 8" in message and "'R 0 0'" in message

    def test_truncated_file_reports_last_line(self, tmp_path):
        path = tmp_path / "truncated.trace"
        path.write_text("# header\nR 0x1000 4096\nW 0x2000 4096\nR 0x\n")
        with pytest.raises(TraceFormatError) as excinfo:
            read_trace(path)
        message = str(excinfo.value)
        assert "line 4" in message and "'R 0x'" in message

    def test_file_with_wrong_field_count_mid_stream(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("R 0x1000 4096\nW 0x2000\nR 0x3000 64\n")
        with pytest.raises(TraceFormatError) as excinfo:
            read_trace(path)
        message = str(excinfo.value)
        assert "line 2" in message and "'W 0x2000'" in message


class TestLoadModelTraces:
    def test_frame_trace_survives_round_trip(self, tmp_path):
        from repro.load.model import VideoRecordingLoadModel
        from repro.usecase.levels import level_by_name
        from repro.usecase.pipeline import VideoRecordingUseCase

        load = VideoRecordingLoadModel(VideoRecordingUseCase(level_by_name("3.1")))
        txns = load.generate_frame(scale=1 / 128)
        path = tmp_path / "frame.trace"
        write_trace(path, txns)
        assert read_trace(path) == txns
