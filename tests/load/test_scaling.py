"""Tests for fractional-workload scaling, including the linearity
guarantee the experiment layer relies on."""

import pytest

from repro.core.config import SystemConfig
from repro.core.system import MultiChannelMemorySystem
from repro.errors import ConfigurationError
from repro.load.model import VideoRecordingLoadModel
from repro.load.scaling import DEFAULT_CHUNK_BUDGET, MIN_SCALE, choose_scale
from repro.usecase.levels import level_by_name
from repro.usecase.pipeline import VideoRecordingUseCase


class TestChooseScale:
    def test_small_workload_unscaled(self):
        assert choose_scale(1000 * 16) == 1.0

    def test_large_workload_scaled_down(self):
        scale = choose_scale(100e6, chunk_budget=100_000)
        assert scale < 1.0
        assert (100e6 / 16) * scale <= 100_000

    def test_power_of_two_denominator(self):
        scale = choose_scale(1e9, chunk_budget=100_000)
        assert (1.0 / scale) == int(1.0 / scale)
        assert int(1.0 / scale) & (int(1.0 / scale) - 1) == 0

    def test_floor_at_min_scale(self):
        assert choose_scale(1e15, chunk_budget=1000) == MIN_SCALE

    def test_default_budget_is_reasonable(self):
        assert DEFAULT_CHUNK_BUDGET >= 100_000

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            choose_scale(0)
        with pytest.raises(ConfigurationError):
            choose_scale(1e6, chunk_budget=10)


class TestScalingLinearity:
    """Simulating a fraction and rescaling must estimate the full run
    accurately -- the soundness condition from the module docstring."""

    @pytest.mark.parametrize("channels", [1, 4])
    def test_quarter_vs_half_frame_agree(self, channels):
        uc = VideoRecordingUseCase(level_by_name("3.1"))
        load = VideoRecordingLoadModel(uc)
        config = SystemConfig(channels=channels, freq_mhz=400.0)
        system = MultiChannelMemorySystem(config)

        estimates = []
        for scale in (1 / 16, 1 / 32):
            txns = load.generate_frame(scale=scale)
            result = system.run(txns, scale=scale)
            estimates.append(result.access_time_ns)
        assert estimates[0] == pytest.approx(estimates[1], rel=0.02)

    def test_scaled_estimate_tracks_full_simulation(self):
        """Ground truth check at a small but unscaled workload."""
        uc = VideoRecordingUseCase(level_by_name("3.1"))
        load = VideoRecordingLoadModel(uc)
        config = SystemConfig(channels=2, freq_mhz=400.0)
        system = MultiChannelMemorySystem(config)

        # "Full" here is 1/8 of a frame, used as the reference...
        reference_scale = 1 / 8
        txns = load.generate_frame(scale=reference_scale)
        reference = system.run(txns, scale=reference_scale).access_time_ns
        # ...and the estimate simulates only 1/64 of a frame.
        txns_small = load.generate_frame(scale=1 / 64)
        estimate = system.run(txns_small, scale=1 / 64).access_time_ns
        assert estimate == pytest.approx(reference, rel=0.03)
