"""Extension: independent channel clusters (the paper's future work).

Paper claim (Section V): "it may be necessary to divide very large
multi-channel memories into independent channel clusters, each
consisting of reasonable number of channels" to keep power manageable
when loads are concurrent.

Scenario: a 720p30 recording plus a light UI/display workload.
Compared layouts of the same 8 channels:

- *monolithic*: both workloads interleave over all 8 channels
  (serialised, since a single interleaved memory is one resource);
- *clustered*: recording on a 4-channel cluster, UI on a 2-channel
  cluster, one 2-channel cluster fully powered down.

The bench asserts the clustered layout still meets real time and
shows the isolation property (the UI's latency is unaffected by the
recording load).
"""

import pytest

from benchmarks.conftest import BENCH_BUDGET, show
from repro.analysis.tables import format_table
from repro.core.clusters import ChannelCluster, ClusteredMemorySystem
from repro.core.config import SystemConfig
from repro.core.system import MultiChannelMemorySystem
from repro.load.generators import sequential_stream
from repro.load.model import VideoRecordingLoadModel
from repro.load.scaling import choose_scale
from repro.usecase.levels import level_by_name
from repro.usecase.pipeline import VideoRecordingUseCase

UI_BYTES = 8 * 2**20  # a WVGA compose + scroll burst per frame


def run_extension():
    level = level_by_name("3.1")
    use_case = VideoRecordingUseCase(level)
    load = VideoRecordingLoadModel(use_case)
    scale = choose_scale(use_case.total_bytes_per_frame(), BENCH_BUDGET)
    video_txns = load.generate_frame(scale=scale)
    ui_txns = sequential_stream(int(UI_BYTES * scale), block_bytes=4096)

    # Monolithic: both streams share one 8-channel memory in sequence.
    mono = MultiChannelMemorySystem(SystemConfig(channels=8, freq_mhz=400.0))
    mono_result = mono.run(video_txns + ui_txns, scale=scale)

    # Clustered: 4 + 2 channels active, 2 powered down.
    clusters = ClusteredMemorySystem(
        [
            ChannelCluster("video", SystemConfig(channels=4, freq_mhz=400.0)),
            ChannelCluster("ui", SystemConfig(channels=2, freq_mhz=400.0)),
            ChannelCluster("spare", SystemConfig(channels=2, freq_mhz=400.0)),
        ]
    )
    results = clusters.run({"video": video_txns, "ui": ui_txns}, scale=scale)
    ui_alone = clusters.run({"ui": ui_txns}, scale=scale)["ui"]
    return mono_result, results, ui_alone


def test_channel_clusters(benchmark):
    mono, clustered, ui_alone = benchmark.pedantic(
        run_extension, rounds=1, iterations=1
    )
    video = clustered["video"]
    ui = clustered["ui"]
    rows = [
        ["Layout", "Video [ms]", "UI [ms]"],
        ["monolithic 8ch (shared)", f"{mono.access_time_ms:.2f}", "(serialised)"],
        [
            "clustered 4+2 (+2 idle)",
            f"{video.access_time_ms:.2f}",
            f"{ui.access_time_ms:.2f}",
        ],
    ]
    show("Extension: independent channel clusters (720p30 + UI)", format_table(rows))

    # The clustered recording still meets real time with margin.
    assert video.access_time_ms < 33.333 * 0.85
    # Isolation: the UI cluster's latency is exactly its stand-alone
    # latency, untouched by the recording load.
    assert ui.access_time_ms == pytest.approx(ui_alone.access_time_ms)
