"""Benchmark: regenerate the Section IV/V XDR comparison.

Paper artifact: the Cell BE comparison -- "the proposed theoretical
next generation mobile DDR SDRAM with eight channels and 400 MHz
clock frequency has similar bandwidth (25.0 GB/s) but power
consumption from 4 % to 25 % of the XDR value, depending on the used
encoding format."
"""

import pytest

from benchmarks.conftest import BENCH_BUDGET, show
from repro.analysis.experiments import run_xdr_comparison


def test_xdr_comparison(benchmark):
    result = benchmark.pedantic(
        run_xdr_comparison,
        kwargs={"chunk_budget": BENCH_BUDGET},
        rounds=1,
        iterations=1,
    )
    show("XDR comparison (8 channels @ 400 MHz vs Cell BE)", result.format())

    # Similar bandwidth...
    assert result.peak_bandwidth_bytes_per_s == pytest.approx(
        result.reference.bandwidth_bytes_per_s, rel=0.05
    )
    # ...at 4-25 % of the power.
    lo, hi = result.power_ratio_range
    assert lo == pytest.approx(0.04, abs=0.01)
    assert hi == pytest.approx(0.25, abs=0.035)
