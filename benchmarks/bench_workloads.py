"""Benchmark: the declarative workload zoo end to end.

Not a paper artifact -- this pins the workloads extension (ROADMAP
item 3, docs/architecture.md section 12):

- spec instantiation is cheap enough to sit inside every sweep job
  (thousands of instantiations per second);
- the declarative ``h264_camcorder`` is bit-identical to the legacy
  imperative facade at benchmark fidelity;
- every zoo spec sweeps end to end, and the zoo's traffic ordering is
  stable (vvc_encoder > h264_camcorder > h264_lossy_ec > vdcm_display
  per frame at 1080p30).
"""

import pytest

from benchmarks.conftest import show
from repro.analysis.sweep import sweep_use_case
from repro.core.config import SystemConfig
from repro.usecase.levels import level_by_name
from repro.usecase.pipeline import VideoRecordingUseCase
from repro.workloads.registry import get_workload

LEVEL = level_by_name("4")
ZOO = ("h264_camcorder", "vvc_encoder", "h264_lossy_ec", "vdcm_display")


def test_instantiation_throughput(benchmark):
    """Binding + instantiating a spec (expression evaluation, buffer
    expansion, traffic resolution) must stay negligible next to the
    simulation it feeds."""
    spec = get_workload("vvc_encoder")

    def instantiate():
        return spec.instantiate(LEVEL).total_bits_per_frame()

    total = benchmark(instantiate)
    assert total > 0


def test_camcorder_matches_legacy(benchmark):
    """The spec's traffic equals the legacy formulas exactly."""
    spec = get_workload("h264_camcorder")

    def both():
        legacy = VideoRecordingUseCase(LEVEL)
        ours = spec.instantiate(LEVEL)
        return legacy, ours

    legacy, ours = benchmark(both)
    assert ours.total_bits_per_frame() == legacy.total_bits_per_frame()
    assert [(b.name, b.size_bytes) for b in ours.buffers()] == [
        (b.name, b.size_bytes) for b in legacy.buffers()
    ]


def test_zoo_sweeps_and_orders(benchmark, budget):
    """One design point per zoo spec through the real sweep path."""
    config = SystemConfig(channels=4, backend="fast")

    def sweep_zoo():
        return {
            name: sweep_use_case(
                [LEVEL], [config], chunk_budget=budget, workload=name
            )[0]
            for name in ZOO
        }

    points = benchmark(sweep_zoo)
    lines = [
        f"{name:<16} {point.access_time_ms:8.2f} ms  "
        f"{get_workload(name).instantiate(LEVEL).total_bits_per_frame() / 1e6:10.1f} Mb/frame"
        for name, point in points.items()
    ]
    show("Workload zoo at 1080p30 on 4ch @ 400 MHz", "\n".join(lines))

    frame_bits = {
        name: get_workload(name).instantiate(LEVEL).total_bits_per_frame()
        for name in ZOO
    }
    assert (
        frame_bits["vvc_encoder"]
        > frame_bits["h264_camcorder"]
        > frame_bits["h264_lossy_ec"]
        > frame_bits["vdcm_display"]
    )
    # Access time orders the same way (same memory, heavier traffic).
    assert (
        points["vvc_encoder"].access_time_ms
        > points["h264_camcorder"].access_time_ms
        > points["vdcm_display"].access_time_ms
    )
    assert all(point.access_time_ms > 0 for point in points.values())
