"""Ablation: in-order (FCFS) vs reordering (FR-FCFS) scheduling.

The paper's channel model serves a single sequential master in order.
Is that leaving bandwidth on the table?  This bench runs both
schedulers on (a) the recording use case and (b) a bank-conflicting
pattern, and shows:

- on the paper's workload the two are within a few percent — the
  sequential, row-friendly stream gives a reordering scheduler nothing
  to exploit, validating the paper's simpler model;
- on conflict-heavy traffic FR-FCFS recovers large factors, which is
  why real controllers ship it anyway.
"""

import pytest

from benchmarks.conftest import BENCH_BUDGET, show
from repro.analysis.tables import format_table
from repro.controller.engine import ChannelEngine
from repro.controller.frfcfs import ReorderingChannelEngine
from repro.core.interleave import ChannelInterleaver
from repro.dram.datasheet import NEXT_GEN_MOBILE_DDR
from repro.load.model import VideoRecordingLoadModel
from repro.load.scaling import choose_scale
from repro.usecase.levels import level_by_name
from repro.usecase.pipeline import VideoRecordingUseCase


def use_case_runs():
    """Channel 0's runs for a 720p30 frame fragment on 2 channels."""
    use_case = VideoRecordingUseCase(level_by_name("3.1"))
    load = VideoRecordingLoadModel(use_case)
    scale = choose_scale(use_case.total_bytes_per_frame(), BENCH_BUDGET)
    interleaver = ChannelInterleaver(2)
    runs = []
    for txn in load.generate_frame(scale=scale):
        span = txn.chunk_span()
        for ch, start, count in interleaver.split_span(span.start, span.stop - 1):
            if ch == 0:
                runs.append((int(txn.op), start, count))
    return runs


def conflict_runs(pairs=2000):
    """Alternating same-bank row conflicts."""
    runs = []
    for i in range(pairs):
        runs.append((0, i % 256, 1))
        runs.append((0, 1024 + (i % 256), 1))
    return runs


def run_ablation():
    workloads = {
        "video use case (720p30)": use_case_runs(),
        "bank-conflict pattern": conflict_runs(),
    }
    rows = [["Workload", "FCFS [kcyc]", "FR-FCFS [kcyc]", "Speedup"]]
    speedups = {}
    for name, runs in workloads.items():
        fcfs = ChannelEngine(NEXT_GEN_MOBILE_DDR, 400.0).run(runs)
        frfcfs = ReorderingChannelEngine(NEXT_GEN_MOBILE_DDR, 400.0).run(runs)
        speedup = fcfs.finish_cycle / frfcfs.finish_cycle
        speedups[name] = speedup
        rows.append(
            [
                name,
                f"{fcfs.finish_cycle / 1e3:.1f}",
                f"{frfcfs.finish_cycle / 1e3:.1f}",
                f"{speedup:.2f}x",
            ]
        )
    return rows, speedups


def test_fcfs_vs_frfcfs(benchmark):
    rows, speedups = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    show("Ablation: FCFS vs FR-FCFS scheduling (1 channel @ 400 MHz)",
         format_table(rows))

    # The paper's workload: reordering buys almost nothing.
    assert speedups["video use case (720p30)"] == pytest.approx(1.0, abs=0.06)
    # Conflict-heavy traffic: reordering wins big.
    assert speedups["bank-conflict pattern"] > 1.4
