"""Ablation: power-down policy.

Paper claims: "For maximum energy savings, it is assumed that bank
clusters go to power down states after the first idle clock cycle"
(Section III) and "the increase in power consumption is moderate when
comparing multi-channel to single-channel configuration" *because* of
that policy (Section IV); "aggressive use of power-down modes is
necessary for energy efficient operation" (Section V).

This bench compares immediate / timeout / never power-down on the
8-channel 720p30 point -- the configuration with the most idle time,
where the policy matters most -- and asserts the paper's ordering.
"""

import dataclasses

import pytest

from benchmarks.conftest import BENCH_BUDGET, show
from repro.analysis.sweep import simulate_use_case
from repro.analysis.tables import format_table
from repro.core.config import SystemConfig
from repro.dram.powerstate import ImmediatePowerDown, NoPowerDown, TimeoutPowerDown
from repro.usecase.levels import level_by_name

POLICIES = (
    ImmediatePowerDown(),
    TimeoutPowerDown(timeout_cycles=64),
    NoPowerDown(),
)


def run_ablation():
    level = level_by_name("3.1")
    rows = [["Policy", "1ch [mW]", "8ch [mW]", "8ch/1ch"]]
    results = {}
    for policy in POLICIES:
        powers = {}
        for m in (1, 8):
            config = dataclasses.replace(
                SystemConfig(channels=m, freq_mhz=400.0), power_down=policy
            )
            point = simulate_use_case(level, config, chunk_budget=BENCH_BUDGET)
            powers[m] = point.total_power_mw
        results[policy.name] = powers
        rows.append(
            [
                policy.name,
                f"{powers[1]:.0f}",
                f"{powers[8]:.0f}",
                f"{powers[8] / powers[1]:.2f}",
            ]
        )
    return rows, results


def test_powerdown_policies(benchmark):
    rows, results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    show("Ablation: power-down policy (720p30 @ 400 MHz)", format_table(rows))

    immediate = results["immediate"]
    never = results["never"]
    # The paper's energy argument: with aggressive power-down, eight
    # channels cost only moderately more than one...
    assert immediate[8] / immediate[1] < 1.6
    # ...without it, idle channels burn standby power and the
    # multi-channel advantage erodes.
    assert never[8] > 1.5 * immediate[8]
    assert never[8] / never[1] > immediate[8] / immediate[1]
