"""Benchmark: regenerate Fig. 3 (access time vs memory clock).

Paper artifact: Fig. 3, "effect of memory clock frequency on memory
access time.  One frame encoded" -- the 720p30 frame simulated over
1/2/4/8 channels at 200-533 MHz against the 33 ms real-time line.

Expected shape (all asserted): single channel fails at 200/266 MHz,
is marginal at 333 MHz and passes from 400 MHz; two channels satisfy
every frequency; each doubling of clock or channels buys close to 2x.
"""

import pytest

from benchmarks.conftest import BENCH_BUDGET, show
from repro.analysis.experiments import run_fig3
from repro.analysis.realtime import RealTimeVerdict


def test_fig3(benchmark):
    fig3 = benchmark.pedantic(
        run_fig3, kwargs={"chunk_budget": BENCH_BUDGET}, rounds=1, iterations=1
    )
    show("Fig. 3: access time vs clock frequency (720p30, one frame)", fig3.format())

    assert fig3.verdicts[200.0][1] is RealTimeVerdict.FAIL
    assert fig3.verdicts[266.0][1] is RealTimeVerdict.FAIL
    assert fig3.verdicts[333.0][1] is RealTimeVerdict.MARGINAL
    assert fig3.verdicts[400.0][1] is RealTimeVerdict.PASS
    for f in fig3.frequencies_mhz:
        for m in (2, 4, 8):
            assert fig3.verdicts[f][m] is RealTimeVerdict.PASS
    # "close to 2x speedup" per doubling.
    for a, b in ((1, 2), (2, 4), (4, 8)):
        ratio = fig3.access_ms[400.0][a] / fig3.access_ms[400.0][b]
        assert 1.7 <= ratio <= 2.1
