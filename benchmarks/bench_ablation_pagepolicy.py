"""Ablation: open vs closed page policy.

Paper claim (Section IV): "In all the evaluations, DRAM open page
policy is used" -- justified implicitly by the workload: "relatively
large data amounts resulting in several memory accesses to sequential
memory locations" means almost every access hits an open row.  This
bench quantifies the choice: closed-page pays tRP + tRCD on every
burst and collapses streaming throughput.
"""

import dataclasses

import pytest

from benchmarks.conftest import BENCH_BUDGET, show
from repro.analysis.sweep import simulate_use_case
from repro.analysis.tables import format_table
from repro.controller.pagepolicy import PagePolicy
from repro.core.config import SystemConfig
from repro.usecase.levels import level_by_name


def run_ablation():
    level = level_by_name("3.1")
    rows = [["Channels", "Open [ms]", "Closed [ms]", "Open row-hit"]]
    data = []
    for m in (1, 4):
        base = SystemConfig(channels=m, freq_mhz=400.0)
        open_pt = simulate_use_case(level, base, chunk_budget=BENCH_BUDGET)
        closed_pt = simulate_use_case(
            level,
            dataclasses.replace(base, page_policy=PagePolicy.CLOSED),
            chunk_budget=BENCH_BUDGET,
        )
        data.append((open_pt, closed_pt))
        rows.append(
            [
                str(m),
                f"{open_pt.access_time_ms:.2f}",
                f"{closed_pt.access_time_ms:.2f}",
                f"{open_pt.result.row_hit_rate * 100:.1f} %",
            ]
        )
    return rows, data


def test_open_vs_closed_page(benchmark):
    rows, data = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    show("Ablation: open vs closed page policy (720p30)", format_table(rows))

    for open_pt, closed_pt in data:
        # Sequential video traffic: open page hits >98 % of the time
        # and closed page is several times slower.
        assert open_pt.result.row_hit_rate > 0.98
        assert closed_pt.access_time_ms > 2.0 * open_pt.access_time_ms
