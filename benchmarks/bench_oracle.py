"""Feasibility-oracle query latency over a warm cache.

Not a paper artifact -- this times the interactive query front door
(:mod:`repro.oracle`) on the workflow it exists for: answering
"can m channels at f MHz sustain this level?" from results a sweep
already paid for.  The claims pinned here:

- with a warm surface, the median query (grid hits plus interpolated
  off-grid points) is >= 100x faster than cold-simulating one
  reference point -- the oracle answers from memory, not simulation;
- every answer names its tier and carries an explicit error bound and
  a confidence interval that brackets its own estimate;
- an exact-tier answer is *bit-identical* to the corresponding
  ``sweep_use_case`` point (checked with the differential-fuzzing
  comparator, the strictest equality the repo has).

The speedup bound is algorithmic (a dict lookup or a two-point
interpolation vs a DRAM simulation), not parallelism, so no CPU-count
skip is needed.
"""

import statistics
import time

from benchmarks.conftest import show
from repro.analysis.sweep import simulate_use_case, sweep_use_case
from repro.core.config import (
    PAPER_CHANNEL_COUNTS,
    PAPER_FREQUENCIES_MHZ,
    SystemConfig,
)
from repro.oracle import FeasibilityOracle, TIERS
from repro.regression.fuzzer import _diff_exact
from repro.service.cache import ResultCache
from repro.usecase.levels import level_by_name

#: The query mix: 720p30 against the paper grid, plus off-grid
#: frequencies that exercise the surrogate interpolation tier.
LEVEL = level_by_name("3.1")
OFFGRID_FREQS = (233.0, 300.0, 366.0, 500.0)


def _warm_oracle(tmp_path, budget):
    cache = ResultCache(tmp_path / "oracle-cache")
    grid = [
        SystemConfig(channels=m, freq_mhz=f)
        for m in PAPER_CHANNEL_COUNTS
        for f in PAPER_FREQUENCIES_MHZ
    ]
    sweep_use_case([LEVEL], grid, chunk_budget=budget, cache=cache)
    oracle = FeasibilityOracle(cache=cache, chunk_budget=budget)
    harvested = oracle.warm(LEVEL)
    assert harvested == len(grid)
    return oracle


def test_warm_query_latency_vs_cold_reference(tmp_path, budget):
    """Warm-oracle p50 is >= 100x faster than one cold reference sim."""
    oracle = _warm_oracle(tmp_path, budget)

    # The cost a caller would otherwise pay: simulate one off-grid
    # point from scratch on the reference backend.
    t0 = time.perf_counter()
    simulate_use_case(
        LEVEL,
        SystemConfig(channels=4, freq_mhz=366.0, backend="reference"),
        chunk_budget=budget,
    )
    t_ref = time.perf_counter() - t0

    queries = [(m, f) for m in PAPER_CHANNEL_COUNTS for f in PAPER_FREQUENCIES_MHZ]
    queries += [(m, f) for m in PAPER_CHANNEL_COUNTS for f in OFFGRID_FREQS]
    # Generous accuracy keeps every query on the warm tiers; the
    # latency being measured is the oracle's own, not a simulation's.
    answers, latencies = [], []
    for _ in range(5):
        for channels, freq in queries:
            answer = oracle.query(LEVEL, channels, freq, accuracy=0.5)
            answers.append(answer)
            latencies.append(answer.latency_s)
    p50 = statistics.median(latencies)

    for answer in answers:
        assert answer.tier in TIERS
        assert answer.error_bound >= 0.0
        assert answer.access_low_ms <= answer.access_time_ms <= answer.access_high_ms
        assert answer.power_low_mw <= answer.total_power_mw <= answer.power_high_mw

    tiers = {tier: sum(1 for a in answers if a.tier == tier) for tier in TIERS}
    show(
        "Oracle query latency (720p30, warm cache)",
        "\n".join(
            [
                f"cold reference point: {t_ref * 1e3:9.3f} ms",
                f"warm query p50:       {p50 * 1e6:9.3f} us "
                f"({t_ref / p50:,.0f}x faster)",
                f"warm query p95:       "
                f"{sorted(latencies)[int(0.95 * len(latencies))] * 1e6:9.3f} us",
                f"tier mix over {len(answers)} queries: "
                + ", ".join(f"{tier}={tiers[tier]}" for tier in TIERS),
            ]
        ),
    )
    assert p50 <= t_ref / 100.0


def test_exact_tier_is_bit_identical_to_sweep(tmp_path, budget):
    """accuracy=0 answers reproduce the sweep point bit for bit."""
    oracle = _warm_oracle(tmp_path, budget)
    answer = oracle.query(LEVEL, 2, 333.0, accuracy=0.0)
    assert answer.tier == "exact"
    assert answer.error_bound == 0.0
    fresh = sweep_use_case(
        [LEVEL],
        [SystemConfig(channels=2, freq_mhz=333.0)],
        chunk_budget=budget,
    )[0]
    assert _diff_exact(answer.point.result, fresh.result) == []
    assert answer.access_time_ms == fresh.access_time_ms
    assert answer.total_power_mw == fresh.total_power_mw
    assert answer.verdict is fresh.verdict
