"""Benchmark: regenerate Fig. 5 (power vs frame format, 400 MHz).

Paper artifact: Fig. 5, "effect of encoding format on memory power
consumption (clock frequency is 400 MHz)", interface power (equation
(1)) stacked on the DRAM bars, zero-height bars for configurations
that miss real time.

Expected values (all asserted, 10 % tolerance): 720p30 costs ~150 mW
on one channel and ~205 mW on eight; 1080p30 on four channels
~345 mW; 2160p30 on eight channels ~1280 mW.
"""

import pytest

from benchmarks.conftest import BENCH_BUDGET, show
from repro.analysis.experiments import run_fig5


def test_fig5(benchmark):
    fig5 = benchmark.pedantic(
        run_fig5, kwargs={"chunk_budget": BENCH_BUDGET}, rounds=1, iterations=1
    )
    show("Fig. 5: power vs frame format (400 MHz)", fig5.format())

    assert fig5.point("3.1", 1).total_power_mw == pytest.approx(150, rel=0.10)
    assert fig5.point("3.1", 8).total_power_mw == pytest.approx(205, rel=0.10)
    assert fig5.point("4", 4).total_power_mw == pytest.approx(345, rel=0.10)
    assert fig5.point("5.2", 8).total_power_mw == pytest.approx(1280, rel=0.10)
    # Zero bars for infeasible configurations.
    assert fig5.point("4.2", 1).reported_power_mw == 0.0
    assert fig5.point("5.2", 4).reported_power_mw == 0.0
    # Moderate multi-channel increase (the paper's headline claim).
    ratio = fig5.point("3.1", 8).total_power_mw / fig5.point("3.1", 1).total_power_mw
    assert ratio < 1.6
