"""Benchmark: regenerate Table II (memory mapping over channels) and
measure the interleaver's transaction-splitting throughput.

Paper artifact: Table II, the 16-byte round-robin of global addresses
over bank clusters ("addresses from 0 to 15 are located in bank
cluster zero and addresses from 16 to 31 in bank cluster one").
"""

from benchmarks.conftest import show
from repro.analysis.experiments import run_table2
from repro.controller.request import MasterTransaction, Op
from repro.core.interleave import ChannelInterleaver


def test_table2(benchmark):
    result = benchmark(run_table2, 8)
    show("Table II: memory mapping over 8 channels", result.format())
    assert result.rows[0] == ("0..15", "BC 0")
    assert result.rows[-1][1] == "BC 0"  # wrap at 16 x M


def test_interleaver_split_throughput(benchmark):
    """Microbenchmark: splitting 10k master transactions over 8
    channels (the per-run cost the system pays before simulation)."""
    inter = ChannelInterleaver(8)
    txns = [MasterTransaction(Op.READ, i * 4096, 4096) for i in range(10_000)]

    def split_all():
        total = 0
        for txn in txns:
            total += len(inter.split_transaction(txn))
        return total

    parts = benchmark(split_all)
    assert parts == 80_000
