"""Warm-cache replay speed and bit-identity on the Fig. 3 sweep.

Not a paper artifact -- this times the persistent content-addressed
result cache (:mod:`repro.service.cache`) on the workflow it exists
for: re-plotting a figure whose points were already simulated once.
The claims pinned here:

- a fully warm cache replays the Fig. 3 grid >= 10x faster than
  computing it (the warm run does no simulation at all -- only key
  hashing, file reads and pickle decode);
- every cache-served point is *bit-identical* to the freshly computed
  one (checked field by field with the differential-fuzzing
  comparator, the strictest equality the repo has);
- the hit/miss counters account for exactly the grid: a cold run is
  all misses, a warm run all hits, nothing unaccounted.

The speedup bound is algorithmic (a disk read vs a DRAM simulation),
not parallelism, so no CPU-count skip is needed.
"""

import time

from benchmarks.conftest import show
from repro.analysis.sweep import sweep_use_case
from repro.core.config import PAPER_CHANNEL_COUNTS, PAPER_FREQUENCIES_MHZ, SystemConfig
from repro.load.scaling import choose_scale
from repro.regression.fuzzer import _diff_exact
from repro.service.cache import ResultCache
from repro.usecase.levels import level_by_name
from repro.usecase.pipeline import VideoRecordingUseCase

#: The Fig. 3 grid: 720p30 across the paper's channel counts and
#: clock frequencies.
LEVEL = level_by_name("3.1")


def _fig3_grid():
    return [
        SystemConfig(channels=m, freq_mhz=f)
        for f in PAPER_FREQUENCIES_MHZ
        for m in PAPER_CHANNEL_COUNTS
    ]


def _timed_sweep(configs, scale, cache):
    t0 = time.perf_counter()
    report = sweep_use_case([LEVEL], configs, scale=scale, cache=cache)
    return time.perf_counter() - t0, report


def test_warm_cache_replay_speed_and_bit_identity(budget, tmp_path):
    """cold vs warm Fig. 3: >= 10x faster, bit-identical, counters
    match the grid size exactly."""
    configs = _fig3_grid()
    scale = choose_scale(
        VideoRecordingUseCase(LEVEL).total_bytes_per_frame(), budget
    )
    cache = ResultCache(tmp_path / "cache")

    t_cold, cold = _timed_sweep(configs, scale, cache)
    t_warm, warm = _timed_sweep(configs, scale, cache)

    grid = len(configs)
    stats = cache.stats()
    assert cold.cached == 0
    assert warm.cached == grid, "warm run must be served entirely from cache"
    assert stats["misses"] == grid, "cold run must miss exactly once per point"
    assert stats["hits"] == grid, "warm run must hit exactly once per point"
    assert stats["writes"] == grid
    assert stats["corrupt"] == 0
    assert len(cache) == grid

    for fresh, cached in zip(cold, warm):
        assert (fresh.config, fresh.level) == (cached.config, cached.level)
        assert _diff_exact(fresh.result, cached.result) == [], (
            f"cache-served point {cached.config.channels}ch@"
            f"{cached.config.freq_mhz:g}MHz differs from the computed one"
        )
        assert cached.power == fresh.power

    speedup = t_cold / t_warm if t_warm > 0 else float("inf")
    show(
        "result cache on the Fig. 3 sweep",
        f"cold {t_cold * 1e3:.0f} ms ({grid} misses), "
        f"warm {t_warm * 1e3:.0f} ms ({grid} hits): {speedup:.1f}x, "
        "bit-identical on every point",
    )
    assert speedup >= 10.0, (
        f"expected a warm replay >= 10x faster than computing, "
        f"measured {speedup:.2f}x"
    )
