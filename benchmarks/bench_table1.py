"""Benchmark: regenerate Table I (per-stage bandwidth requirements).

Paper artifact: Table I, "memory bandwidth requirement for the stages
of the video recording use case" -- five H.264/AVC levels, per-stage
megabits per frame, and the MB/s totals the prose quotes (1.9 GB/s
for 720p30, 4.3 GB/s for 1080p30, 8.6 GB/s for 1080p60).
"""

import pytest

from benchmarks.conftest import show
from repro.analysis.experiments import format_table1, run_table1


def test_table1(benchmark):
    table = benchmark(run_table1)
    show("Table I: memory bandwidth requirements", format_table1(table))

    # The paper's prose anchors, at full fidelity.
    assert table.column_for("3.1").bandwidth_gb_per_s == pytest.approx(1.9, abs=0.06)
    assert table.column_for("4").bandwidth_gb_per_s == pytest.approx(4.3, rel=0.05)
    assert table.column_for("4.2").bandwidth_gb_per_s == pytest.approx(8.6, rel=0.06)
    ratio = (
        table.column_for("4").frame_total_bits
        / table.column_for("3.1").frame_total_bits
    )
    assert ratio == pytest.approx(2.2, abs=0.05)
