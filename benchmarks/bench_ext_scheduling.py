"""Extension: race-to-idle vs just-in-time memory scheduling.

Section V calls for "novel policies, advanced control mechanisms" to
keep power manageable.  The first policy anyone reaches for is pacing:
instead of letting the memory sprint through the frame's traffic and
power down (*race-to-idle*), spread the requests across the frame
(*just-in-time*) so the memory never bursts.

The measured result defends the paper's design point: with immediate
power-down and a cheap exit (tXP = 2 cycles), both strategies land
within a few percent of each other in energy per frame — the
aggressive power-down assumption already banks the saving pacing
would chase, at fixed voltage and frequency.
"""

import pytest

from benchmarks.conftest import BENCH_BUDGET, show
from repro.analysis.explorer import compare_energy_strategies
from repro.analysis.tables import format_table
from repro.core.config import SystemConfig
from repro.usecase.levels import level_by_name


def run_comparison():
    rows = [["Config", "RTI [mJ]", "JIT [mJ]", "JIT/RTI"]]
    comparisons = []
    for level_name, channels in (("3.1", 1), ("3.1", 4), ("4", 4)):
        cmp = compare_energy_strategies(
            level_by_name(level_name),
            SystemConfig(channels=channels, freq_mhz=400.0),
            chunk_budget=BENCH_BUDGET,
        )
        comparisons.append(cmp)
        rows.append(
            [
                f"{level_name} on {channels}ch",
                f"{cmp.race_to_idle_energy_j * 1e3:.2f}",
                f"{cmp.just_in_time_energy_j * 1e3:.2f}",
                f"{cmp.energy_ratio:.3f}",
            ]
        )
    return rows, comparisons


def test_scheduling_strategies(benchmark):
    rows, comparisons = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    show("Extension: race-to-idle vs just-in-time (400 MHz)", format_table(rows))

    for cmp in comparisons:
        # Near-equivalence: immediate power-down already captures the
        # pacing saving.
        assert cmp.energy_ratio == pytest.approx(1.0, abs=0.15)
        # Pacing stretches the access window out to the injection
        # window (85 % of the frame period), however fast the memory is.
        window_ms = cmp.level.frame_period_ms * 0.85
        assert cmp.just_in_time_access_ms >= cmp.race_to_idle_access_ms
        assert cmp.just_in_time_access_ms == pytest.approx(window_ms, rel=0.15)
