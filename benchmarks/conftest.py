"""Shared helpers for the benchmark harness.

Every paper artifact has a benchmark that (a) regenerates the
table/figure at a fidelity close to the paper's own runs and (b)
times the regeneration with pytest-benchmark.  Run with ``-s`` to see
the regenerated artifacts::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest

#: Simulated-burst budget for the experiment benchmarks: high enough
#: that results match the full-frame numbers to well under a percent,
#: low enough that the whole harness runs in tens of seconds.
BENCH_BUDGET = 200_000


def show(title: str, body: str) -> None:
    """Print a regenerated artifact (visible with ``pytest -s``)."""
    print()
    print(f"==== {title} ====")
    print(body)


@pytest.fixture
def budget():
    """The benchmark simulation budget."""
    return BENCH_BUDGET
