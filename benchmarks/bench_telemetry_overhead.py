"""Telemetry overhead guard: a disabled session must stay free.

``MultiChannelMemorySystem.run(telemetry=None)`` is the untapped
baseline.  Passing ``Telemetry.disabled()`` routes every tap through
the null registry/profiler instruments, and this guard pins that path
to < 2 % of the baseline on an engine-dominated run -- the contract
that lets library code thread a telemetry session unconditionally.

The measurement is paired and interleaved (baseline and tapped runs
alternate on the same system and transaction list, best-of-N each) so
that machine noise hits both sides equally; the comparison retries a
few times before failing, because a single noisy scheduler event can
still skew one side of one attempt.

An enabled session is also measured.  It is *allowed* to cost more --
phase timing is real work -- but taps happen per run, never per burst,
so it is loosely pinned too: a regression past the loose bound means
someone added per-burst instrumentation to the hot loop.
"""

from __future__ import annotations

import time

from benchmarks.conftest import show
from repro.core.config import SystemConfig
from repro.core.system import MultiChannelMemorySystem
from repro.load.model import VideoRecordingLoadModel
from repro.telemetry import Telemetry
from repro.usecase.levels import level_by_name
from repro.usecase.pipeline import VideoRecordingUseCase

#: Workload: 1/8 of a 720p30 frame on 4 channels -- the same
#: engine-dominated shape as bench_engine's end-to-end benchmark.
SCALE = 0.125

#: Best-of-N rounds per attempt; paired, so 2N runs per attempt.
ROUNDS = 5

#: Noisy-machine retries before the guard is allowed to fail.
ATTEMPTS = 3

#: The contract: disabled telemetry costs < 2 %.
MAX_DISABLED_OVERHEAD = 0.02

#: Loose bound on the *enabled* path: catches accidental per-burst
#: instrumentation, not honest per-run bookkeeping.
MAX_ENABLED_OVERHEAD = 0.25


def _workload():
    load = VideoRecordingLoadModel(VideoRecordingUseCase(level_by_name("3.1")))
    system = MultiChannelMemorySystem(SystemConfig(channels=4, freq_mhz=400.0))
    return system, load.generate_frame(scale=SCALE)


def _paired_best(system, txns, make_telemetry, rounds=ROUNDS):
    """Interleaved best-of-N: (baseline seconds, tapped seconds)."""
    best_base = best_tap = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        system.run(txns, scale=SCALE)
        best_base = min(best_base, time.perf_counter() - start)
        telemetry = make_telemetry()
        start = time.perf_counter()
        system.run(txns, scale=SCALE, telemetry=telemetry)
        best_tap = min(best_tap, time.perf_counter() - start)
    return best_base, best_tap


def _guarded_ratio(make_telemetry, bound):
    """Best overhead ratio across attempts (early-out under ``bound``)."""
    system, txns = _workload()
    system.run(txns, scale=SCALE)  # warm caches before timing
    ratio = float("inf")
    for _ in range(ATTEMPTS):
        base, tapped = _paired_best(system, txns, make_telemetry)
        ratio = min(ratio, tapped / base)
        if ratio <= 1.0 + bound:
            break
    return ratio


def test_disabled_telemetry_overhead():
    """run(telemetry=Telemetry.disabled()) costs < 2 % vs untapped."""
    ratio = _guarded_ratio(Telemetry.disabled, MAX_DISABLED_OVERHEAD)
    show(
        "telemetry overhead (disabled)",
        f"disabled/none runtime ratio: {ratio:.4f} "
        f"(bound {1.0 + MAX_DISABLED_OVERHEAD:.2f})",
    )
    assert ratio <= 1.0 + MAX_DISABLED_OVERHEAD, (
        f"disabled telemetry slowed the engine path by "
        f"{(ratio - 1.0) * 100:.1f} % (> {MAX_DISABLED_OVERHEAD * 100:.0f} % "
        "budget); something is tapping the hot loop"
    )


def test_enabled_telemetry_overhead():
    """An enabled session taps per run, not per burst."""
    ratio = _guarded_ratio(Telemetry.enabled, MAX_ENABLED_OVERHEAD)
    show(
        "telemetry overhead (enabled)",
        f"enabled/none runtime ratio: {ratio:.4f} "
        f"(bound {1.0 + MAX_ENABLED_OVERHEAD:.2f})",
    )
    assert ratio <= 1.0 + MAX_ENABLED_OVERHEAD, (
        f"enabled telemetry slowed the engine path by "
        f"{(ratio - 1.0) * 100:.1f} %; per-run taps should be far cheaper "
        "-- did per-burst instrumentation sneak into the hot loop?"
    )
