"""Microbenchmarks: simulator throughput.

Not a paper artifact -- these track the cost of the simulator itself
(bursts simulated per second in the channel engine, end-to-end frame
simulation) so performance regressions in the hot loop are caught.
"""

import pytest

from benchmarks.conftest import show
from repro.controller.engine import ChannelEngine
from repro.core.config import SystemConfig
from repro.core.system import MultiChannelMemorySystem
from repro.dram.datasheet import NEXT_GEN_MOBILE_DDR
from repro.load.model import VideoRecordingLoadModel
from repro.usecase.levels import level_by_name
from repro.usecase.pipeline import VideoRecordingUseCase

CHUNKS = 100_000


def test_engine_sequential_throughput(benchmark):
    """Raw engine speed on a sequential read stream."""
    engine = ChannelEngine(NEXT_GEN_MOBILE_DDR, 400.0)
    result = benchmark(engine.run, [(0, 0, CHUNKS)])
    assert result.total_chunks == CHUNKS


def test_engine_mixed_throughput(benchmark):
    """Engine speed on alternating read/write blocks."""
    engine = ChannelEngine(NEXT_GEN_MOBILE_DDR, 400.0)
    runs = []
    for i in range(CHUNKS // 512):
        runs.append((0, i * 512, 256))
        runs.append((1, 2**20 + i * 512, 256))
    result = benchmark(engine.run, runs)
    assert result.total_chunks == (CHUNKS // 512) * 512


def test_frame_generation_throughput(benchmark):
    """Load-model transaction generation for 1/8 of a 720p frame."""
    load = VideoRecordingLoadModel(VideoRecordingUseCase(level_by_name("3.1")))
    txns = benchmark(load.generate_frame, 0.125)
    assert len(txns) > 1000


def test_end_to_end_frame_simulation(benchmark):
    """Full pipeline: generate + split + simulate 1/8 frame on 4ch."""
    load = VideoRecordingLoadModel(VideoRecordingUseCase(level_by_name("3.1")))
    system = MultiChannelMemorySystem(SystemConfig(channels=4, freq_mhz=400.0))
    txns = load.generate_frame(scale=0.125)

    result = benchmark(system.run, txns, 0.125)
    assert result.access_time_ms > 0
