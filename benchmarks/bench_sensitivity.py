"""Calibration robustness: do the conclusions survive perturbation?

Not a paper artifact — a reproduction-quality check.  The paper never
publishes its extrapolated device parameters, so this repository
calibrates four constants (EXPERIMENTS.md).  This bench sweeps each
around its default and re-derives the eight feasibility claims the
paper's prose states; the assertion is that every claim survives a
meaningful neighbourhood of the calibration, i.e. the reproduction's
conclusions are not an artifact of one lucky constant.

Observed fragility (and asserted as such): only the cell the paper
itself calls *doubtful* — 2160p30 on 8 channels — tips over at the
pessimistic edges (small blocks, shallow queues, 5 reference frames),
which is precisely the behaviour a marginal design point should show.
"""

import pytest

from benchmarks.conftest import show
from repro.analysis.sensitivity import (
    sweep_block_bytes,
    sweep_interconnect_overhead,
    sweep_queue_depth,
    sweep_reference_frames,
)

BUDGET = 80_000


def run_all_sweeps():
    return {
        "interconnect": sweep_interconnect_overhead(chunk_budget=BUDGET),
        "block": sweep_block_bytes(chunk_budget=BUDGET),
        "nref": sweep_reference_frames(chunk_budget=BUDGET),
        "queue": sweep_queue_depth(chunk_budget=BUDGET),
    }


def test_sensitivity(benchmark):
    results = benchmark.pedantic(run_all_sweeps, rounds=1, iterations=1)
    for result in results.values():
        show(f"Sensitivity: {result.parameter}", result.format())

    # The calibrated defaults hold everywhere.
    for result in results.values():
        assert result.holds_at(result.default_value)

    # The interconnect constant is robust across its whole +-33 % band.
    assert len(results["interconnect"].robust_values()) == 5

    # Any fragility is confined to the paper's own "doubtful" cell.
    for result in results.values():
        for value in result.outcomes:
            failed = result.failed_claims_at(value)
            assert set(failed) <= {"2160p30@8ch"}, (result.parameter, value, failed)
