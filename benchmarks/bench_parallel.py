"""Parallel execution layer: sequential vs pooled channel simulation.

Not a paper artifact -- this times the :mod:`repro.parallel` layer on
the paper's heaviest evaluated point (level 5.2, 2160p@30, on eight
channels) and pins its two contracts:

- the parallel path is *bit-identical* to the sequential one, and
- on a machine with enough cores it is actually faster (>= 2x with
  four or more workers).

The speedup assertion is skipped on small machines and wherever the
process pool is unavailable (the layer then falls back in-process by
design); the identity assertion always runs.
"""

import time

import pytest

from benchmarks.conftest import show
from repro.core.config import SystemConfig
from repro.core.system import PARALLEL_MIN_CHUNKS, MultiChannelMemorySystem
from repro.load.model import VideoRecordingLoadModel
from repro.load.scaling import choose_scale
from repro.parallel import available_cpus, pool_supported
from repro.usecase.levels import level_by_name
from repro.usecase.pipeline import VideoRecordingUseCase

#: The 8-channel 2160p design point (the paper's hardest PASS cell).
CONFIG = SystemConfig(channels=8, freq_mhz=400.0)
LEVEL = level_by_name("5.2")

#: Workers for the pooled benchmarks: one per CPU, at most one per
#: channel, and at least two so the pool actually engages.
POOL_WORKERS = max(2, min(available_cpus(), CONFIG.channels))


def _frame_transactions(budget):
    use_case = VideoRecordingUseCase(LEVEL)
    load = VideoRecordingLoadModel(use_case)
    scale = choose_scale(use_case.total_bytes_per_frame(), budget)
    return load.generate_frame(scale=scale), scale


def test_sequential_channel_simulation(benchmark, budget):
    """Baseline: the 8 channel streams simulated in-process."""
    txns, scale = _frame_transactions(budget)
    system = MultiChannelMemorySystem(CONFIG)
    result = benchmark(system.run, txns, scale)
    assert result.access_time_ms > 0
    show(
        "sequential 2160p on 8ch",
        f"{result.describe()}  [workers=1]",
    )


@pytest.mark.skipif(not pool_supported(), reason="process pool unavailable")
def test_parallel_channel_simulation(benchmark, budget):
    """Pooled run: same streams fanned over worker processes.

    Asserts bit-identity against the sequential baseline on every
    machine; speed is what the benchmark clock records.
    """
    txns, scale = _frame_transactions(budget)
    system = MultiChannelMemorySystem(CONFIG)
    baseline = system.run(txns, scale)
    result = benchmark(system.run, txns, scale, workers=POOL_WORKERS)
    assert result.channels == baseline.channels
    assert result.access_time_ms == baseline.access_time_ms
    show(
        "parallel 2160p on 8ch",
        f"{result.describe()}  [workers={POOL_WORKERS}]",
    )


@pytest.mark.skipif(not pool_supported(), reason="process pool unavailable")
def test_parallel_speedup(budget):
    """Wall-clock speedup of the pooled path over the sequential one.

    The >= 2x acceptance bound only binds on machines with >= 4 CPUs;
    elsewhere the run still exercises the pool end to end and reports
    the measured ratio.
    """
    txns, scale = _frame_transactions(8 * max(budget, PARALLEL_MIN_CHUNKS))
    system = MultiChannelMemorySystem(CONFIG)

    t0 = time.perf_counter()
    sequential = system.run(txns, scale, workers=1)
    t_seq = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = system.run(txns, scale, workers=POOL_WORKERS)
    t_par = time.perf_counter() - t0

    assert parallel.channels == sequential.channels
    speedup = t_seq / t_par if t_par > 0 else float("inf")
    show(
        "parallel speedup",
        f"sequential {t_seq * 1e3:.0f} ms, parallel {t_par * 1e3:.0f} ms "
        f"with {POOL_WORKERS} workers on {available_cpus()} CPUs: "
        f"{speedup:.2f}x",
    )
    if available_cpus() >= 4:
        assert speedup >= 2.0, (
            f"expected >= 2x speedup with {POOL_WORKERS} workers on "
            f"{available_cpus()} CPUs, measured {speedup:.2f}x"
        )
