"""Ablation: RBC vs BRC address multiplexing.

Paper claim (Section IV): "The shown results utilize Row-Bank-Column
(RBC) address multiplexing type since somewhat better performance
were achieved compared to the Bank-Row-Column (BRC) multiplexing
type."  This bench measures both on the 720p30 use case and asserts
RBC wins by a small margin (the "somewhat" -- a few percent, not an
order of magnitude).
"""

import dataclasses

import pytest

from benchmarks.conftest import BENCH_BUDGET, show
from repro.analysis.sweep import simulate_use_case
from repro.analysis.tables import format_table
from repro.controller.mapping import AddressMultiplexing
from repro.core.config import SystemConfig
from repro.usecase.levels import level_by_name


def run_ablation():
    level = level_by_name("3.1")
    rows = [["Channels", "RBC [ms]", "BRC [ms]", "BRC/RBC"]]
    ratios = []
    for m in (1, 2, 4, 8):
        base = SystemConfig(channels=m, freq_mhz=400.0)
        rbc = simulate_use_case(level, base, chunk_budget=BENCH_BUDGET)
        brc = simulate_use_case(
            level,
            dataclasses.replace(base, multiplexing=AddressMultiplexing.BRC),
            chunk_budget=BENCH_BUDGET,
        )
        ratio = brc.access_time_ms / rbc.access_time_ms
        ratios.append(ratio)
        rows.append(
            [str(m), f"{rbc.access_time_ms:.2f}", f"{brc.access_time_ms:.2f}",
             f"{ratio:.3f}"]
        )
    return rows, ratios


def test_rbc_vs_brc(benchmark):
    rows, ratios = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    show("Ablation: RBC vs BRC address multiplexing (720p30)", format_table(rows))

    for ratio in ratios:
        # RBC no worse, but only "somewhat" better (< 15 %).
        assert 0.999 <= ratio <= 1.15
    assert max(ratios) > 1.005  # BRC measurably behind somewhere
