"""Extension: future formats beyond the paper's evaluation.

Section V: *"In future systems, where the memory loads exceed the
HDTV requirement, novel policies, advanced control mechanisms, and
reorganization of traditional memory management are needed to keep
the power consumption manageable."*

This bench extrapolates the evaluated system to 2160p@60 (~32 GB/s)
and 8K@30 (~64 GB/s) and shows *why* the paper says that:

- the evaluated 8-channel organisation is insufficient even at
  533 MHz;
- wider organisations (16-64 channels) become feasible but their
  per-channel efficiency collapses -- the fixed 16-byte interleaving
  granularity slices each master transaction ever thinner, so
  read/write turnarounds and interconnect exposure dominate;
- power crosses into watts, which is exactly the regime where the
  paper prescribes independent channel clusters and smarter
  management rather than more brute-force interleaving.
"""

import pytest

from benchmarks.conftest import BENCH_BUDGET, show
from repro.analysis.realtime import RealTimeVerdict
from repro.analysis.sweep import simulate_use_case
from repro.analysis.tables import format_table
from repro.core.config import SystemConfig
from repro.usecase.levels import level_by_name

POINTS = (
    ("5.2@60", 8, 533.0),
    ("5.2@60", 16, 533.0),
    ("5.2@60", 32, 400.0),
    ("8K", 32, 533.0),
    ("8K", 64, 400.0),
)


def run_extension():
    rows = [["Format", "Ch", "MHz", "Access [ms]", "Power [mW]", "Eff", "Verdict"]]
    points = {}
    for name, channels, freq in POINTS:
        point = simulate_use_case(
            level_by_name(name),
            SystemConfig(channels=channels, freq_mhz=freq),
            chunk_budget=BENCH_BUDGET,
        )
        points[(name, channels, freq)] = point
        rows.append(
            [
                name,
                str(channels),
                f"{freq:g}",
                f"{point.access_time_ms:.1f}",
                f"{point.total_power_mw:.0f}",
                f"{point.result.bus_efficiency * 100:.0f} %",
                str(point.verdict),
            ]
        )
    return rows, points


def test_future_formats(benchmark):
    rows, points = benchmark.pedantic(run_extension, rounds=1, iterations=1)
    show("Extension: beyond-HDTV formats (Section V)", format_table(rows))

    # The paper's evaluated maximum (8 channels) cannot do 2160p60
    # even at the top DDR2 clock.
    assert points[("5.2@60", 8, 533.0)].verdict is RealTimeVerdict.FAIL
    # Wider organisations get there...
    assert points[("5.2@60", 32, 400.0)].verdict is RealTimeVerdict.PASS
    assert points[("8K", 64, 400.0)].verdict.feasible
    # ...but per-channel efficiency collapses as the interleaving
    # slices transactions thinner (the Section V motivation).
    eff_8 = points[("5.2@60", 8, 533.0)].result.bus_efficiency
    eff_32 = points[("5.2@60", 32, 400.0)].result.bus_efficiency
    assert eff_32 < eff_8
    # ...and power leaves the handheld envelope entirely.
    assert points[("8K", 64, 400.0)].total_power_mw > 3000.0
