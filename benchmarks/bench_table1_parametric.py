"""Parametric Table I: the use-case knobs the paper leaves implicit.

Fig. 1 parameterises the chain (digital zoom *z*, the 20 %
stabilization border, the encoder constant of six) but Table I only
reports one setting.  This bench sweeps those knobs and checks the
structural claims:

- digital zoom shrinks *downstream image-processing* traffic
  (``~N/(z x z)`` after post-processing) but cannot touch the encoder,
  which still works on full frames;
- the encoder constant scales the coding side nearly linearly and
  dominates the total — so the "implementation dependent" factor is
  *the* knob a real implementation would fight for;
- removing the stabilization border trims every sensor-side stage by
  1.44x.
"""

import pytest

from benchmarks.conftest import show
from repro.analysis.tables import format_table
from repro.usecase.levels import level_by_name
from repro.usecase.pipeline import VideoRecordingUseCase


def run_parametric():
    level = level_by_name("4")
    variants = {
        "baseline (z=1, border, f=6)": {},
        "digizoom z=1.4": {"digizoom": 1.4},
        "digizoom z=2": {"digizoom": 2.0},
        "no stabilization border": {"stabilization_border": 1.0},
        "encoder factor 4": {"encoder_factor": 4.0},
        "encoder factor 8": {"encoder_factor": 8.0},
    }
    rows = [["Variant", "Image [Mb]", "Coding [Mb]", "Total [GB/s]"]]
    cases = {}
    for name, kwargs in variants.items():
        uc = VideoRecordingUseCase(level, **kwargs)
        cases[name] = uc
        rows.append(
            [
                name,
                f"{uc.image_processing_bits_per_frame() / 1e6:.1f}",
                f"{uc.video_coding_bits_per_frame() / 1e6:.1f}",
                f"{uc.bandwidth_bytes_per_s() / 1e9:.2f}",
            ]
        )
    return rows, cases


def test_table1_parametric(benchmark):
    rows, cases = benchmark.pedantic(run_parametric, rounds=1, iterations=1)
    show("Table I parametric sweep (1080p30)", format_table(rows))

    base = cases["baseline (z=1, border, f=6)"]
    zoom = cases["digizoom z=2"]
    # Zoom shrinks image processing but leaves coding untouched.
    assert zoom.image_processing_bits_per_frame() < (
        base.image_processing_bits_per_frame()
    )
    assert zoom.video_coding_bits_per_frame() == pytest.approx(
        base.video_coding_bits_per_frame()
    )
    # The encoder constant dominates the total.
    f4 = cases["encoder factor 4"]
    f8 = cases["encoder factor 8"]
    assert f8.total_bits_per_frame() > 1.25 * f4.total_bits_per_frame()
    # Dropping the border trims the sensor-side stages.
    no_border = cases["no stabilization border"]
    assert no_border.image_processing_bits_per_frame() < (
        0.85 * base.image_processing_bits_per_frame()
    )
