"""Device comparison: why the paper needs a *next-generation* mobile DDR.

Three devices on the 720p30 recording load:

- the **2008 Mobile DDR** baseline (reference [12]): capped at
  200 MHz and 1.8 V — more channels are the only way up;
- the paper's **next-generation mobile DDR** projection: DDR2 clocks
  at 1.35 V;
- a **standard DDR2**-class part (reference [14]'s comparison): same
  clocks, non-mobile current profile.

Asserted shape: the contemporary part needs at least twice the
channels of the next-gen part for the same format; the standard part
matches the next-gen part's speed but burns several times the power
on a mostly-idle multi-channel configuration.
"""

import dataclasses

import pytest

from benchmarks.conftest import BENCH_BUDGET, show
from repro.analysis.sweep import simulate_use_case
from repro.analysis.tables import format_table
from repro.core.config import SystemConfig
from repro.dram.datasheet import (
    CONTEMPORARY_MOBILE_DDR,
    NEXT_GEN_MOBILE_DDR,
    STANDARD_DDR2,
)
from repro.usecase.levels import level_by_name

DEVICES = (
    ("mobile DDR 2008 @200", CONTEMPORARY_MOBILE_DDR, 200.0),
    ("next-gen mobile @400", NEXT_GEN_MOBILE_DDR, 400.0),
    ("standard DDR2 @400", STANDARD_DDR2, 400.0),
)


def run_comparison():
    level = level_by_name("3.1")
    rows = [["Device", "Channels", "Access [ms]", "Power [mW]", "Verdict"]]
    points = {}
    for name, device, freq in DEVICES:
        for channels in (1, 2, 4, 8):
            config = SystemConfig(channels=channels, freq_mhz=freq, device=device)
            point = simulate_use_case(level, config, chunk_budget=BENCH_BUDGET)
            points[(name, channels)] = point
            rows.append(
                [
                    name,
                    str(channels),
                    f"{point.access_time_ms:.1f}",
                    f"{point.total_power_mw:.0f}",
                    str(point.verdict),
                ]
            )
    return rows, points


def test_device_comparison(benchmark):
    rows, points = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    show("Device comparison (720p30)", format_table(rows))

    # The 2008 part at 200 MHz needs more channels than the
    # next-generation part at 400 MHz for the same format.
    def min_channels(name):
        for m in (1, 2, 4, 8):
            if points[(name, m)].verdict.feasible:
                return m
        return None

    contemporary = min_channels("mobile DDR 2008 @200")
    next_gen = min_channels("next-gen mobile @400")
    assert next_gen == 1
    assert contemporary >= 2 * next_gen

    # The standard DDR2 part keeps up in speed...
    std = points[("standard DDR2 @400", 8)]
    ngen = points[("next-gen mobile @400", 8)]
    assert std.access_time_ms == pytest.approx(ngen.access_time_ms, rel=0.02)
    # ...but pays several times the power on an 8-channel memory
    # (reference [14]'s low-power-vs-standard argument).
    assert std.total_power_mw > 2.0 * ngen.total_power_mw
