"""Backend speedup and parity on the Fig. 3 frequency sweep.

Not a paper artifact -- this times the pluggable simulation backends
(:mod:`repro.backends`) against each other on the paper's Fig. 3 axis
(720p30 frame, single channel, 200-533 MHz) and pins their contracts:

- ``fast`` (exact run-length batching) is >= 3x faster than
  ``reference`` end to end while returning *identical* command counts
  and access times within 1 % (in fact bit-identical -- the parity
  suite in tests/backends/ pins the stronger property);
- ``batch`` (vectorized decode + cross-point caching, the numpy extra)
  is >= 10x faster than ``reference`` on the sweep while staying
  bit-identical on every compared field;
- ``analytic`` (closed form) lands within its documented 15 %
  access-time tolerance at a fraction of the cost.

The speedup bounds bind everywhere: they are algorithmic (fewer loop
iterations), not parallelism, so no CPU-count skip is needed.
"""

import time

import pytest

from benchmarks.conftest import show
from repro.core.config import PAPER_FREQUENCIES_MHZ, SystemConfig
from repro.core.system import MultiChannelMemorySystem
from repro.load.model import VideoRecordingLoadModel
from repro.load.scaling import choose_scale
from repro.usecase.levels import level_by_name
from repro.usecase.pipeline import VideoRecordingUseCase

#: The Fig. 3 workload: one 720p30 frame on a single channel.
LEVEL = level_by_name("3.1")

#: Documented analytic access-time tolerance (docs/architecture.md).
ANALYTIC_TOLERANCE = 0.15


def _frame_transactions(budget):
    use_case = VideoRecordingUseCase(LEVEL)
    load = VideoRecordingLoadModel(use_case)
    scale = choose_scale(use_case.total_bytes_per_frame(), budget)
    return load.generate_frame(scale=scale), scale


def _sweep(txns, scale, backend):
    """Run the Fig. 3 frequency axis under ``backend``; return
    (elapsed seconds, results in frequency order)."""
    results = []
    t0 = time.perf_counter()
    for freq in PAPER_FREQUENCIES_MHZ:
        config = SystemConfig(channels=1, freq_mhz=freq, backend=backend)
        results.append(MultiChannelMemorySystem(config).run(txns, scale=scale))
    return time.perf_counter() - t0, results


def test_fast_backend_speedup_and_parity(budget):
    """fast vs reference: >= 3x on the sweep, identical counts, <1 % dev."""
    txns, scale = _frame_transactions(budget)
    _sweep(txns, scale, "reference")  # warm caches before timing
    t_ref, ref = _sweep(txns, scale, "reference")
    t_fast, fast = _sweep(txns, scale, "fast")

    worst_dev = 0.0
    for r, f in zip(ref, fast):
        assert f.merged_counters().as_dict() == r.merged_counters().as_dict()
        dev = abs(f.access_time_ms - r.access_time_ms) / r.access_time_ms
        worst_dev = max(worst_dev, dev)
    assert worst_dev < 0.01, f"fast deviates {worst_dev:.2%} from reference"

    speedup = t_ref / t_fast if t_fast > 0 else float("inf")
    show(
        "fast backend on the Fig. 3 sweep",
        f"reference {t_ref * 1e3:.0f} ms, fast {t_fast * 1e3:.0f} ms: "
        f"{speedup:.2f}x, worst access-time deviation {worst_dev:.3%}",
    )
    assert speedup >= 3.0, (
        f"expected >= 3x over the reference engine, measured {speedup:.2f}x"
    )


def test_batch_backend_speedup_and_bit_identity(budget):
    """batch vs reference: >= 10x on the sweep, bit-identical results.

    The cross-point decode cache is what the sweep shape buys: all six
    frequency points share one vectorized decode of the frame's access
    stream, so only the frequency-dependent timing recurrences re-run.
    """
    pytest.importorskip("numpy", reason="batch backend needs numpy")
    from repro.backends.batch import clear_decode_cache

    txns, scale = _frame_transactions(budget)
    _sweep(txns, scale, "reference")  # warm caches before timing
    t_ref, ref = _sweep(txns, scale, "reference")
    clear_decode_cache()
    _sweep(txns, scale, "batch")  # warm: first point pays the decode
    t_batch, batch = _sweep(txns, scale, "batch")

    for r, b in zip(ref, batch):
        assert b.merged_counters().as_dict() == r.merged_counters().as_dict()
        assert b.access_time_ms == r.access_time_ms
        for ch_r, ch_b in zip(r.channels, b.channels):
            assert ch_b.finish_cycle == ch_r.finish_cycle
            assert ch_b.bank_accesses == ch_r.bank_accesses
            assert ch_b.states == ch_r.states

    speedup = t_ref / t_batch if t_batch > 0 else float("inf")
    show(
        "batch backend on the Fig. 3 sweep",
        f"reference {t_ref * 1e3:.0f} ms, batch {t_batch * 1e3:.0f} ms: "
        f"{speedup:.2f}x, bit-identical on all six points",
    )
    assert speedup >= 10.0, (
        f"expected >= 10x over the reference engine, measured {speedup:.2f}x"
    )


def test_analytic_backend_tolerance(budget):
    """analytic vs reference: within the documented 15 % tolerance."""
    txns, scale = _frame_transactions(budget)
    t_ref, ref = _sweep(txns, scale, "reference")
    t_ana, ana = _sweep(txns, scale, "analytic")

    worst_dev = 0.0
    for r, a in zip(ref, ana):
        counters_r, counters_a = r.merged_counters(), a.merged_counters()
        assert counters_a.reads == counters_r.reads
        assert counters_a.writes == counters_r.writes
        dev = abs(a.access_time_ms - r.access_time_ms) / r.access_time_ms
        worst_dev = max(worst_dev, dev)
    assert worst_dev < ANALYTIC_TOLERANCE, (
        f"analytic deviates {worst_dev:.2%}, documented tolerance is "
        f"{ANALYTIC_TOLERANCE:.0%}"
    )

    show(
        "analytic backend on the Fig. 3 sweep",
        f"reference {t_ref * 1e3:.0f} ms, analytic {t_ana * 1e3:.0f} ms "
        f"({t_ref / max(t_ana, 1e-9):.0f}x), worst deviation {worst_dev:.2%}",
    )
