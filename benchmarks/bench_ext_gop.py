"""Extension: GOP-structured (I/P-frame) workload analysis.

The paper sizes for the steady-state inter-coded frame.  A real H.264
stream is a group of pictures: every GOP starts with an intra-coded
frame whose encoder reads no references, so its memory load is far
lighter.  This bench quantifies the per-frame profile at the paper's
design points and confirms the methodology:

- the **P frame is the worst frame**, so sizing for it (as the paper
  does) covers the whole stream;
- the I frame returns > 30 % headroom — the slack a system could
  spend on concurrent work or deeper power-down;
- GOP-average power sits a few percent under the per-P-frame Fig. 5
  bar.
"""

import pytest

from benchmarks.conftest import BENCH_BUDGET, show
from repro.analysis.steadystate import analyze_gop
from repro.analysis.tables import format_table
from repro.core.config import SystemConfig
from repro.usecase.levels import level_by_name

POINTS = (("3.1", 1), ("4", 4), ("4.2", 8))


def run_extension():
    rows = [["Config", "I [ms]", "P [ms]", "Headroom",
             "GOP power [mW]", "Worst verdict"]]
    analyses = []
    for level_name, channels in POINTS:
        gop = analyze_gop(
            level_by_name(level_name),
            SystemConfig(channels=channels, freq_mhz=400.0),
            chunk_budget=BENCH_BUDGET,
        )
        analyses.append(gop)
        rows.append(
            [
                f"{level_name} on {channels}ch",
                f"{gop.i_frame_ms:.1f}",
                f"{gop.p_frame_ms:.1f}",
                f"{gop.i_frame_headroom * 100:.0f} %",
                f"{gop.sustained_power_mw:.0f}",
                str(gop.worst_frame_verdict),
            ]
        )
    return rows, analyses


def test_gop_profile(benchmark):
    rows, analyses = benchmark.pedantic(run_extension, rounds=1, iterations=1)
    show("Extension: GOP (I/P) per-frame profile (400 MHz)", format_table(rows))

    for gop in analyses:
        assert gop.worst_frame_ms == gop.p_frame_ms
        assert gop.i_frame_headroom > 0.3
        assert gop.sustained_power_mw < gop.p_frame_power_mw
        assert gop.worst_frame_verdict.feasible
