"""Benchmark: regenerate Fig. 4 (access time vs frame format, 400 MHz).

Paper artifact: Fig. 4, "effect of encoding format on memory access
time (clock frequency is 400 MHz)" with the 30 fps and 60 fps
real-time lines.

Expected shape (all asserted): level 3.1 is achievable with every
channel count; 3.2 needs >= 2 channels; 1080p30 needs 4 to be safe
(2 is marginal); 1080p60 needs all 8; 2160p30 is on the edge even
with 8.
"""

import pytest

from benchmarks.conftest import BENCH_BUDGET, show
from repro.analysis.experiments import run_fig4
from repro.analysis.realtime import RealTimeVerdict

FAIL = RealTimeVerdict.FAIL
MARGINAL = RealTimeVerdict.MARGINAL
PASS = RealTimeVerdict.PASS


def test_fig4(benchmark):
    fig4 = benchmark.pedantic(
        run_fig4, kwargs={"chunk_budget": BENCH_BUDGET}, rounds=1, iterations=1
    )
    show("Fig. 4: access time vs frame format (400 MHz)", fig4.format())

    for m in (1, 2, 4, 8):
        assert fig4.verdict("3.1", m).feasible
    assert fig4.verdict("3.2", 1) is FAIL
    assert fig4.verdict("3.2", 2) is PASS
    assert fig4.verdict("4", 2) is MARGINAL
    assert fig4.verdict("4", 4) is PASS
    assert fig4.verdict("4.2", 4) in (MARGINAL, FAIL)
    assert fig4.verdict("4.2", 8) is PASS
    for m in (1, 2, 4):
        assert fig4.verdict("5.2", m) is FAIL
    assert fig4.verdict("5.2", 8).feasible
