#!/usr/bin/env python3
"""Drive the memory system with your own traffic, and trace files.

The simulator is not tied to the video use case: any stream of block
reads/writes can be simulated.  This example

1. characterises the memory with synthetic patterns (sequential,
   random, alternating read/write) on RBC vs BRC multiplexing,
2. writes the video-recording frame traffic to a trace file and
   replays it -- the interchange format for driving the simulator
   from external workload generators.

Run::

    python examples/custom_traffic_traces.py
"""

import tempfile
from pathlib import Path

from repro import (
    AddressMultiplexing,
    MultiChannelMemorySystem,
    SystemConfig,
    VideoRecordingLoadModel,
    level_by_name,
    read_trace,
    write_trace,
)
from repro.analysis.tables import format_table
from repro.load.generators import (
    alternating_rw_stream,
    random_stream,
    sequential_stream,
)
from repro.usecase.pipeline import VideoRecordingUseCase
from dataclasses import replace


def characterise() -> None:
    """Synthetic-pattern characterisation on 2 channels @ 400 MHz."""
    base = SystemConfig(channels=2, freq_mhz=400.0)
    patterns = {
        "sequential 4MB": sequential_stream(4 * 2**20, block_bytes=4096),
        "random 64B x 20k": random_stream(20_000, 32 * 2**20, access_bytes=64),
        "alternating R/W 4KB": alternating_rw_stream(512, block_bytes=4096),
    }
    rows = [["Pattern", "RBC eff", "BRC eff", "RBC row-hit"]]
    for name, txns in patterns.items():
        rbc = MultiChannelMemorySystem(base).run(txns)
        brc = MultiChannelMemorySystem(
            replace(base, multiplexing=AddressMultiplexing.BRC)
        ).run(txns)
        rows.append(
            [
                name,
                f"{rbc.bus_efficiency * 100:.1f} %",
                f"{brc.bus_efficiency * 100:.1f} %",
                f"{rbc.row_hit_rate * 100:.1f} %",
            ]
        )
    print("synthetic traffic characterisation (2 channels @ 400 MHz)\n")
    print(format_table(rows))
    print()


def trace_round_trip() -> None:
    """Persist a frame's traffic and replay it from the file."""
    use_case = VideoRecordingUseCase(level_by_name("3.1"))
    load = VideoRecordingLoadModel(use_case)
    txns = load.generate_frame(scale=1 / 16)

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "720p30_frame.trace"
        count = write_trace(path, txns)
        replayed = read_trace(path)
        print(f"trace file: {count} transactions, "
              f"{sum(t.size for t in replayed) / 1e6:.1f} MB of traffic "
              f"(1/16 of a 720p30 frame)")

        system = MultiChannelMemorySystem(SystemConfig(channels=4, freq_mhz=400.0))
        result = system.run(replayed, scale=1 / 16)
        print(f"replayed on 4 channels: frame access time "
              f"{result.access_time_ms:.2f} ms, "
              f"efficiency {result.bus_efficiency * 100:.1f} %")


def main() -> None:
    characterise()
    trace_round_trip()


if __name__ == "__main__":
    main()
