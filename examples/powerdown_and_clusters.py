#!/usr/bin/env python3
"""Energy management: power-down policies and channel clusters.

Reproduces the paper's two energy arguments interactively:

1. **Aggressive power-down makes multi-channel cheap** (Sections
   III-V): compares immediate / timeout / never power-down on a
   mostly-idle 8-channel memory.
2. **Channel clusters** (Section V future work): running a light
   concurrent workload on its own small cluster isolates it from the
   recording stream while spare clusters power down entirely.

Run::

    python examples/powerdown_and_clusters.py
"""

from dataclasses import replace

from repro import (
    ChannelCluster,
    ClusteredMemorySystem,
    ImmediatePowerDown,
    NoPowerDown,
    SystemConfig,
    TimeoutPowerDown,
    level_by_name,
    simulate_use_case,
)
from repro.analysis.tables import format_table
from repro.load.generators import sequential_stream
from repro.load.model import VideoRecordingLoadModel
from repro.load.scaling import choose_scale
from repro.usecase.pipeline import VideoRecordingUseCase


def powerdown_comparison() -> None:
    level = level_by_name("3.1")
    rows = [["Power-down policy", "1 ch [mW]", "8 ch [mW]"]]
    for policy in (ImmediatePowerDown(), TimeoutPowerDown(64), NoPowerDown()):
        cells = [policy.name]
        for channels in (1, 8):
            config = replace(
                SystemConfig(channels=channels, freq_mhz=400.0),
                power_down=policy,
            )
            point = simulate_use_case(level, config)
            cells.append(f"{point.total_power_mw:.0f}")
        rows.append(cells)
    print("720p30 recording power vs power-down policy\n")
    print(format_table(rows))
    print("\nwithout power-down, the 8-channel memory loses its energy "
          "advantage:\nidle channels burn standby current all frame long.\n")


def cluster_demo() -> None:
    level = level_by_name("3.1")
    use_case = VideoRecordingUseCase(level)
    load = VideoRecordingLoadModel(use_case)
    scale = choose_scale(use_case.total_bytes_per_frame())
    video = load.generate_frame(scale=scale)
    ui = sequential_stream(int(8 * 2**20 * scale), block_bytes=4096)

    clusters = ClusteredMemorySystem(
        [
            ChannelCluster("video", SystemConfig(channels=4, freq_mhz=400.0)),
            ChannelCluster("ui", SystemConfig(channels=2, freq_mhz=400.0)),
            ChannelCluster("spare", SystemConfig(channels=2, freq_mhz=400.0)),
        ]
    )
    results = clusters.run({"video": video, "ui": ui}, scale=scale)
    print(f"clustered memory: {clusters.describe()}")
    print(f"  video cluster: {results['video'].access_time_ms:.2f} ms "
          f"(budget {level.frame_period_ms:.1f} ms)")
    print(f"  ui cluster   : {results['ui'].access_time_ms:.2f} ms, "
          "fully isolated from the recording stream")
    print("  spare cluster: powered down for the whole frame")


def main() -> None:
    powerdown_comparison()
    cluster_demo()


if __name__ == "__main__":
    main()
