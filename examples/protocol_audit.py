#!/usr/bin/env python3
"""Audit the simulator's DRAM command stream, command by command.

The channel engine can log every command it issues (ACT/PRE/RD/WR/REF
and power-down transitions) with cycle timestamps; the independent
protocol checker then re-verifies the whole stream against the device
timing rules (tRCD, tRP, tRAS, tRC, tRRD, tWR, tWTR, tRFC, tXP, bus
occupancy).  This is how the test suite proves the timing engine
honest — and how you can debug your own traffic patterns.

Run::

    python examples/protocol_audit.py
"""

from collections import Counter

from repro import SystemConfig
from repro.controller.engine import ChannelEngine
from repro.core.interleave import ChannelInterleaver
from repro.load.model import VideoRecordingLoadModel
from repro.usecase.levels import level_by_name
from repro.usecase.pipeline import VideoRecordingUseCase


def main() -> None:
    # Build channel 0's share of a 720p30 frame fragment on a
    # 2-channel memory.
    use_case = VideoRecordingUseCase(level_by_name("3.1"))
    load = VideoRecordingLoadModel(use_case)
    interleaver = ChannelInterleaver(2)
    runs = []
    for txn in load.generate_frame(scale=1 / 256):
        span = txn.chunk_span()
        for ch, start, count in interleaver.split_span(span.start, span.stop - 1):
            if ch == 0:
                runs.append((int(txn.op), start, count))

    config = SystemConfig(channels=2, freq_mhz=400.0)
    engine = ChannelEngine(
        device=config.device,
        freq_mhz=config.freq_mhz,
        multiplexing=config.multiplexing,
        page_policy=config.page_policy,
    )

    log = []
    result = engine.run(runs, command_log=log)

    print(f"simulated {result.total_chunks} bursts "
          f"({result.bytes_moved / 1e6:.2f} MB) in {result.finish_ns / 1e3:.1f} us")
    print(f"bus efficiency {result.bus_efficiency * 100:.1f} %, "
          f"row-hit rate {result.counters.row_hit_rate() * 100:.1f} %\n")

    print("first 12 commands on the command bus:")
    for rec in log[:12]:
        print(f"  cycle {rec.cycle:>6}  {rec.command.value:<4}"
              + (f"  bank {rec.bank}" if rec.bank >= 0 else "")
              + (f"  row {rec.row}" if rec.row >= 0 else ""))

    mix = Counter(rec.command.value for rec in log)
    print("\ncommand mix:", dict(sorted(mix.items())))

    checker = engine.make_checker()
    violations = checker.check(log)
    print(f"\nprotocol audit: {len(log)} commands checked, "
          f"{len(violations)} violations")
    assert not violations, violations[:3]
    print("the stream honours every timing constraint "
          "(tRCD/tRP/tRAS/tRC/tRRD/tWR/tWTR/tRFC/tXP, bus occupancy)")


if __name__ == "__main__":
    main()
