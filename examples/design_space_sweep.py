#!/usr/bin/env python3
"""Design-space exploration: pick a memory for your camcorder.

Sweeps every (channel count, interface clock) combination the paper
considers against a chosen recording format and prints the feasible
design points with their access time and power -- the exploration a
memory-subsystem architect would actually run with this library.

Run::

    python examples/design_space_sweep.py            # 1080p30
    python examples/design_space_sweep.py 4.2        # 1080p60
    python examples/design_space_sweep.py 5.2        # 2160p30
"""

import sys

from repro import (
    RealTimeVerdict,
    SystemConfig,
    level_by_name,
    simulate_use_case,
)
from repro.analysis.tables import format_table
from repro.core.config import PAPER_CHANNEL_COUNTS, PAPER_FREQUENCIES_MHZ


def main(level_name: str = "4") -> None:
    level = level_by_name(level_name)
    print(f"design-space sweep for {level.column_title} "
          f"(needs real time within {level.frame_period_ms:.1f} ms, "
          f"15 % processing margin)\n")

    rows = [["Clock [MHz]"] + [f"{m} ch" for m in PAPER_CHANNEL_COUNTS]]
    cheapest = None
    for freq in PAPER_FREQUENCIES_MHZ:
        row = [f"{freq:g}"]
        for channels in PAPER_CHANNEL_COUNTS:
            config = SystemConfig(channels=channels, freq_mhz=freq)
            point = simulate_use_case(level, config)
            if point.verdict is RealTimeVerdict.FAIL:
                row.append("--")
                continue
            marker = "~" if point.verdict is RealTimeVerdict.MARGINAL else ""
            row.append(
                f"{point.access_time_ms:.1f}ms/{point.total_power_mw:.0f}mW{marker}"
            )
            if point.verdict is RealTimeVerdict.PASS and (
                cheapest is None or point.total_power_mw < cheapest[2]
            ):
                cheapest = (channels, freq, point.total_power_mw,
                            point.access_time_ms)
        rows.append(row)

    print(format_table(rows))
    print("\n('--' = misses real time; '~' = marginal, under 15 % headroom)")
    if cheapest:
        channels, freq, power, access = cheapest
        print(
            f"\ncheapest safe design point: {channels} channel(s) @ {freq:g} MHz "
            f"-> {access:.1f} ms, {power:.0f} mW"
        )
    else:
        print("\nno configuration meets the requirement — "
              "this format needs more than 8 channels at DDR2 clocks")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "4")
