#!/usr/bin/env python3
"""Quickstart: can a 4-channel mobile DDR memory record 1080p video?

The paper's headline question, in ten lines of API: full-HD (1080p)
H.264/AVC recording at 30 fps needs ~4.3 GB/s of execution-memory
bandwidth; a four-channel 400 MHz next-generation mobile DDR memory
delivers it in real time at ~345 mW.

Run::

    python examples/quickstart.py
"""

from repro import RealTimeVerdict, SystemConfig, level_by_name, simulate_use_case


def main() -> None:
    level = level_by_name("4")  # H.264/AVC level 4: 1080p @ 30 fps
    config = SystemConfig(channels=4, freq_mhz=400.0)

    point = simulate_use_case(level, config)

    print(f"use case      : video recording, {level.column_title}")
    print(f"memory        : {config.describe()}")
    print(f"peak bandwidth: {config.peak_bandwidth_bytes_per_s / 1e9:.1f} GB/s")
    print()
    print(f"frame access time : {point.access_time_ms:.1f} ms "
          f"(budget {level.frame_period_ms:.1f} ms)")
    print(f"bus efficiency    : {point.result.bus_efficiency * 100:.1f} %")
    print(f"row-buffer hits   : {point.result.row_hit_rate * 100:.1f} %")
    print(f"average power     : {point.total_power_mw:.0f} mW "
          f"(interface {point.power.interface_power_w * 1e3:.1f} mW)")
    print(f"verdict           : {point.verdict}")

    assert point.verdict is RealTimeVerdict.PASS, "1080p30 should fit on 4 channels"


if __name__ == "__main__":
    main()
