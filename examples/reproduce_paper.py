#!/usr/bin/env python3
"""Reproduce the whole paper in one run, with paper-vs-measured checks.

Walks every artifact of "A case for multi-channel memories in video
recording" (DATE 2009) in order, prints the regenerated tables, and
verifies the prose's numeric anchors against the simulation — the
script version of EXPERIMENTS.md.

Run::

    python examples/reproduce_paper.py            # full fidelity, ~1 min
    python examples/reproduce_paper.py --fast     # reduced budget, seconds
"""

import sys

from repro.analysis.experiments import (
    format_table1,
    run_fig3,
    run_fig4,
    run_fig5,
    run_table1,
    run_table2,
    run_xdr_comparison,
)
from repro.analysis.realtime import RealTimeVerdict
from repro.regression import GOLDEN_CHUNK_BUDGET, compare_results


def check(name: str, condition: bool, detail: str = "") -> bool:
    status = "ok " if condition else "FAIL"
    print(f"  [{status}] {name}" + (f" ({detail})" if detail else ""))
    return condition


def main(fast: bool = False) -> int:
    budget = 60_000 if fast else 400_000
    results = []

    print("== Table I: bandwidth requirements ==")
    table = run_table1()
    print(format_table1(table))
    gbps = {n: table.column_for(n).bandwidth_gb_per_s for n in ("3.1", "4", "4.2")}
    results.append(check("720p30 ~ 1.9 GB/s", abs(gbps["3.1"] - 1.9) < 0.06,
                         f"{gbps['3.1']:.2f}"))
    results.append(check("1080p30 ~ 4.3 GB/s", abs(gbps["4"] - 4.3) / 4.3 < 0.05,
                         f"{gbps['4']:.2f}"))
    results.append(check("1080p60 ~ 8.6 GB/s", abs(gbps["4.2"] - 8.6) / 8.6 < 0.06,
                         f"{gbps['4.2']:.2f}"))

    print("\n== Table II: channel interleaving ==")
    print(run_table2(8).format())

    print("\n== Fig. 3: access time vs clock (720p30) ==")
    fig3 = run_fig3(chunk_budget=budget)
    print(fig3.format())
    v = fig3.verdicts
    results.append(check("1ch fails at 200/266 MHz",
                         v[200.0][1] is RealTimeVerdict.FAIL
                         and v[266.0][1] is RealTimeVerdict.FAIL))
    results.append(check("1ch marginal at 333 MHz",
                         v[333.0][1] is RealTimeVerdict.MARGINAL))
    results.append(check("2ch meets every clock",
                         all(v[f][2] is RealTimeVerdict.PASS
                             for f in fig3.frequencies_mhz)))

    print("\n== Fig. 4 / Fig. 5: format sweep at 400 MHz ==")
    fig5 = run_fig5(chunk_budget=budget)
    print(fig5.fig4.format())
    print()
    print(fig5.format())
    f4 = fig5.fig4
    results.append(check("720p60 needs 2 channels",
                         not f4.verdict("3.2", 1).feasible
                         and f4.verdict("3.2", 2) is RealTimeVerdict.PASS))
    results.append(check("1080p30 safe on 4 channels",
                         f4.verdict("4", 4) is RealTimeVerdict.PASS))
    results.append(check("1080p60 needs 8 channels",
                         f4.verdict("4.2", 4) is not RealTimeVerdict.PASS
                         and f4.verdict("4.2", 8) is RealTimeVerdict.PASS))
    results.append(check("2160p30 on the edge with 8",
                         f4.verdict("5.2", 8).feasible
                         and not f4.verdict("5.2", 4).feasible))
    for name, channels, target in (("3.1", 1, 150.0), ("3.1", 8, 205.0),
                                   ("4", 4, 345.0), ("5.2", 8, 1280.0)):
        measured = fig5.point(name, channels).total_power_mw
        results.append(check(
            f"{name}@{channels}ch ~ {target:.0f} mW",
            abs(measured - target) / target < 0.10,
            f"{measured:.0f} mW",
        ))

    print("\n== XDR comparison ==")
    xdr = run_xdr_comparison(fig5=fig5)
    print(xdr.format())
    lo, hi = xdr.power_ratio_range
    results.append(check("power 4-25 % of XDR",
                         abs(lo - 0.04) < 0.01 and abs(hi - 0.25) < 0.035,
                         f"{lo * 100:.0f}-{hi * 100:.0f} %"))

    print("\n== Golden baselines ==")
    # The committed goldens are captured at the --fast budget, so that
    # run must match them exactly; the full-budget run simulates a
    # larger workload sample and is held to a 5% cross-budget band
    # (verdicts excluded: near-boundary cells legitimately flip when
    # the access time moves inside the band).
    exact = budget == GOLDEN_CHUNK_BUDGET
    comparisons = compare_results(
        table1=table,
        table2=run_table2(8),
        fig3=fig3,
        fig4=fig5.fig4,
        fig5=fig5,
        extra_rel=0.0 if exact else 0.05,
        check_verdicts=exact,
    )
    for comparison in comparisons:
        print(comparison.format())
    results.append(check(
        "all artifacts match the golden baselines",
        all(c.passed for c in comparisons),
        "exact" if exact else "5% cross-budget band",
    ))

    passed = sum(results)
    print(f"\n{passed}/{len(results)} paper anchors reproduced")
    return 0 if passed == len(results) else 1


if __name__ == "__main__":
    sys.exit(main(fast="--fast" in sys.argv))
